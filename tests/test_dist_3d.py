"""The Split-3D-SpMM algorithm (Section IV-D)."""

import numpy as np
import pytest

from repro.comm import Category, VirtualRuntime
from repro.dist.algo_3d import DistGCN3D
from repro.graph import make_synthetic


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=108, avg_degree=5, f=12, n_classes=4, seed=29)


WIDTHS = (12, 8, 4)


class TestVerification:
    @pytest.mark.parametrize("p", [1, 8, 27])
    def test_matches_serial(self, ds, p):
        rt = VirtualRuntime.make_3d(p)
        algo = DistGCN3D(rt, ds.adjacency, WIDTHS, seed=1)
        diff = algo.verify_against_serial(ds.features, ds.labels, epochs=3, seed=1)
        assert diff < 1e-10

    def test_uneven_sizes(self):
        """n and f not divisible by p or p^2."""
        ds2 = make_synthetic(n=101, avg_degree=4, f=11, n_classes=3, seed=2)
        rt = VirtualRuntime.make_3d(8)
        algo = DistGCN3D(rt, ds2.adjacency, (11, 7, 3), seed=0)
        diff = algo.verify_against_serial(ds2.features, ds2.labels, epochs=2, seed=0)
        assert diff < 1e-10

    def test_narrow_features(self):
        """f < p^(1/3) splits: empty feature blocks must be harmless."""
        ds2 = make_synthetic(n=64, avg_degree=4, f=2, n_classes=2, seed=3)
        rt = VirtualRuntime.make_3d(27)
        algo = DistGCN3D(rt, ds2.adjacency, (2, 4, 2), seed=3)
        diff = algo.verify_against_serial(ds2.features, ds2.labels, epochs=2, seed=3)
        assert diff < 1e-10

    def test_directed_adjacency(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(60, 4.0, seed=4, directed=True))
        )
        rng = np.random.default_rng(1)
        feats = rng.standard_normal((60, 8))
        labels = rng.integers(0, 3, 60)
        rt = VirtualRuntime.make_3d(8)
        algo = DistGCN3D(rt, directed, (8, 6, 3), seed=5)
        diff = algo.verify_against_serial(feats, labels, epochs=2, seed=5)
        assert diff < 1e-10

    def test_wrong_mesh_rejected(self, ds):
        rt = VirtualRuntime.make_2d(4)
        with pytest.raises(TypeError, match="3D mesh"):
            DistGCN3D(rt, ds.adjacency, WIDTHS)


class TestCommunicationAccounting:
    def _epoch(self, dataset, p, widths=WIDTHS):
        rt = VirtualRuntime.make_3d(p)
        algo = DistGCN3D(rt, dataset.adjacency, widths, seed=0)
        algo.setup(dataset.features, dataset.labels)
        return algo.train_epoch(0)

    def test_sparse_and_dense_traffic_present(self, ds):
        st = self._epoch(ds, 8)
        assert st.scomm_bytes > 0
        assert st.dcomm_bytes > 0

    def test_symmetric_input_needs_no_transpose(self, ds):
        """For A == A^T the Split-3D A-grid equals the A^T-grid block for
        block, so no transpose exchange is charged."""
        st = self._epoch(ds, 8)
        assert st.bytes_by_category[Category.TRPOSE] == 0

    def test_directed_input_charges_transpose(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(64, 4.0, seed=6, directed=True))
        )
        rng = np.random.default_rng(2)
        feats = rng.standard_normal((64, 8))
        labels = rng.integers(0, 3, 64)
        rt = VirtualRuntime.make_3d(8)
        algo = DistGCN3D(rt, directed, (8, 6, 3), seed=0)
        algo.setup(feats, labels)
        st = algo.train_epoch(0)
        assert st.bytes_by_category[Category.TRPOSE] > 0

    def test_per_rank_comm_shrinks_faster_than_2d(self):
        """Section IV-D: 3D reduces per-process words by P^(2/3) versus
        2D's P^(1/2).  Compare the same P=64 on both algorithms."""
        from repro.dist.algo_2d import DistGCN2D

        big = make_synthetic(n=512, avg_degree=6, f=32, n_classes=4, seed=7)
        w = (32, 16, 4)
        rt2 = VirtualRuntime.make_2d(64)
        algo2 = DistGCN2D(rt2, big.adjacency, w, seed=0)
        algo2.setup(big.features, big.labels)
        st2 = algo2.train_epoch(0)
        rt3 = VirtualRuntime.make_3d(64)
        algo3 = DistGCN3D(rt3, big.adjacency, w, seed=0)
        algo3.setup(big.features, big.labels)
        st3 = algo3.train_epoch(0)
        # 3D's dense per-rank traffic beats 2D's at equal P (the paper's
        # asymptotic claim; constants favour 3D by P^(1/6) = 2 here).
        assert (
            st3.max_rank_comm_bytes < st2.max_rank_comm_bytes
        )


class TestTrainingBehaviour:
    def test_loss_decreases(self, ds):
        rt = VirtualRuntime.make_3d(8)
        algo = DistGCN3D(rt, ds.adjacency, WIDTHS, seed=9)
        hist = algo.fit(ds.features, ds.labels, epochs=15)
        assert hist.final_loss < hist.losses[0]

    def test_gather_log_probs_is_valid_distribution(self, ds):
        rt = VirtualRuntime.make_3d(8)
        algo = DistGCN3D(rt, ds.adjacency, WIDTHS, seed=10)
        algo.fit(ds.features, ds.labels, epochs=1)
        lp = algo.gather_log_probs()
        assert lp.shape == (ds.num_vertices, WIDTHS[-1])
        np.testing.assert_allclose(np.exp(lp).sum(axis=1), 1.0, atol=1e-9)
