"""Serial GCN reference: the paper's equations, gradient-checked."""

import numpy as np
import pytest

from repro.graph import make_synthetic
from repro.nn.activations import Identity, ReLU
from repro.nn.layers import GCNLayer
from repro.nn.loss import nll_loss
from repro.nn.model import GCN, SerialTrainer
from repro.nn.optim import SGD, Adam
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmm import spmm


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=48, avg_degree=4, f=10, n_classes=3, seed=9)


class TestGCNLayer:
    def test_forward_equation(self, ds):
        """Z = A^T H W, H' = sigma(Z) -- checked against dense algebra."""
        rng = np.random.default_rng(0)
        w = rng.standard_normal((10, 6))
        layer = GCNLayer(w, ReLU())
        h = ds.features
        out, cache = layer.forward(ds.adjacency, h)
        a_dense = ds.adjacency.to_dense()
        expected_z = a_dense @ h @ w
        np.testing.assert_allclose(cache.z, expected_z, atol=1e-10)
        np.testing.assert_allclose(out, np.maximum(expected_z, 0), atol=1e-10)

    def test_cache_reuses_spmm_product(self, ds):
        rng = np.random.default_rng(1)
        layer = GCNLayer(rng.standard_normal((10, 4)), Identity())
        _, cache = layer.forward(ds.adjacency, ds.features)
        np.testing.assert_allclose(
            cache.t, spmm(ds.adjacency, ds.features), atol=1e-12
        )

    def test_width_mismatch_rejected(self, ds):
        layer = GCNLayer(np.zeros((7, 4)))
        with pytest.raises(ValueError, match="width"):
            layer.forward(ds.adjacency, ds.features)

    def test_backward_weight_gradient_identity_activation(self, ds):
        """For identity sigma, Y = (A^T H)^T G exactly."""
        rng = np.random.default_rng(2)
        layer = GCNLayer(rng.standard_normal((10, 4)), Identity())
        h = ds.features
        _, cache = layer.forward(ds.adjacency, h)
        g_out = rng.standard_normal((48, 4))
        _, grad_w, g = layer.backward(ds.adjacency, cache, g_out)
        a_dense = ds.adjacency.to_dense()
        np.testing.assert_allclose(
            grad_w, (a_dense @ h).T @ g_out, atol=1e-10
        )
        # Equation 3's reuse identity: (A^T H)^T G == H^T (A G).
        np.testing.assert_allclose(
            grad_w, h.T @ (a_dense @ g_out), atol=1e-10
        )


class TestGCNGradients:
    def _finite_diff_check(self, ds, widths, seed, n_probes=6):
        model = GCN(widths, seed=seed)
        a = ds.adjacency
        lp, caches = model.forward(a, ds.features)
        loss, gout = nll_loss(lp, ds.labels)
        grads = model.backward(a, caches, gout)
        rng = np.random.default_rng(seed)
        eps = 1e-6
        for li, w in enumerate(model.weights):
            for _ in range(n_probes):
                i = int(rng.integers(w.shape[0]))
                j = int(rng.integers(w.shape[1]))
                w[i, j] += eps
                lp2, _ = model.forward(a, ds.features)
                l2, _ = nll_loss(lp2, ds.labels)
                w[i, j] -= 2 * eps
                lp3, _ = model.forward(a, ds.features)
                l3, _ = nll_loss(lp3, ds.labels)
                w[i, j] += eps
                fd = (l2 - l3) / (2 * eps)
                assert grads[li][i, j] == pytest.approx(fd, abs=1e-6), (
                    f"layer {li} entry ({i},{j})"
                )

    def test_two_layer_gradients(self, ds):
        self._finite_diff_check(ds, (10, 6, 3), seed=1)

    def test_three_layer_gradients(self, ds):
        """The paper's L=3 architecture."""
        self._finite_diff_check(ds, (10, 16, 16, 3), seed=2)

    def test_deep_gradients(self):
        ds5 = make_synthetic(n=30, avg_degree=3, f=6, n_classes=2, seed=3)
        self._finite_diff_check(ds5, (6, 5, 5, 5, 2), seed=3, n_probes=3)


class TestTraining:
    def test_loss_decreases(self, ds):
        trainer = SerialTrainer.for_dataset(ds, hidden=8, optimizer=SGD(lr=0.5))
        hist = trainer.train(ds.features, ds.labels, epochs=30)
        assert hist.final_loss < hist.losses[0]

    def test_adam_trains(self, ds):
        trainer = SerialTrainer.for_dataset(ds, hidden=8, optimizer=Adam(lr=0.02))
        hist = trainer.train(ds.features, ds.labels, epochs=30)
        assert hist.final_loss < hist.losses[0]

    def test_deterministic_training(self, ds):
        h1 = SerialTrainer.for_dataset(ds, seed=4, optimizer=SGD(lr=0.1)).train(
            ds.features, ds.labels, epochs=5
        )
        h2 = SerialTrainer.for_dataset(ds, seed=4, optimizer=SGD(lr=0.1)).train(
            ds.features, ds.labels, epochs=5
        )
        np.testing.assert_array_equal(h1.losses, h2.losses)

    def test_directed_adjacency_distinct_transpose(self):
        """A vs A^T handled explicitly (the paper supports directed)."""
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import row_normalize, add_self_loops

        adj = row_normalize(add_self_loops(erdos_renyi(40, 4.0, seed=5, directed=True)))
        at = adj.transpose()
        model = GCN((8, 6, 3), seed=0)
        rng = np.random.default_rng(6)
        feats = rng.standard_normal((40, 8))
        labels = rng.integers(0, 3, 40)
        trainer = SerialTrainer(model, at, a=adj, optimizer=SGD(lr=0.2))
        hist = trainer.train(feats, labels, epochs=15)
        assert hist.final_loss < hist.losses[0]

    def test_set_weights_validation(self):
        model = GCN((4, 3), seed=0)
        with pytest.raises(ValueError):
            model.set_weights([np.zeros((4, 2))])
        with pytest.raises(ValueError):
            model.set_weights([])

    def test_predict_matches_forward(self, ds):
        model = GCN(ds.layer_widths(hidden=8), seed=1)
        out, _ = model.forward(ds.adjacency, ds.features)
        np.testing.assert_array_equal(
            model.predict(ds.adjacency, ds.features), out
        )

    def test_history_empty_raises(self):
        from repro.nn.model import TrainHistory

        with pytest.raises(ValueError):
            TrainHistory().final_loss
