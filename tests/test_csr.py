"""From-scratch CSR matrix: construction, structure ops, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix, coo_to_csr_arrays


def random_dense(shape, density, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal(shape)
    d[rng.random(shape) > density] = 0.0
    return d


@st.composite
def coo_matrices(draw):
    m = draw(st.integers(min_value=1, max_value=12))
    n = draw(st.integers(min_value=1, max_value=12))
    nnz = draw(st.integers(min_value=0, max_value=30))
    rows = draw(
        st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=nnz, max_size=nnz
        )
    )
    return np.array(rows), np.array(cols), np.array(vals), (m, n)


class TestConstruction:
    def test_from_coo_simple(self):
        m = CSRMatrix.from_coo([0, 1, 2], [1, 0, 2], [1.0, 2.0, 3.0], (3, 3))
        dense = m.to_dense()
        expected = np.array([[0, 1, 0], [2, 0, 0], [0, 0, 3.0]])
        np.testing.assert_array_equal(dense, expected)

    def test_duplicates_summed(self):
        m = CSRMatrix.from_coo([0, 0], [1, 1], [2.0, 3.0], (2, 2))
        assert m.nnz == 1
        assert m.to_dense()[0, 1] == 5.0

    def test_duplicates_rejected_when_disallowed(self):
        with pytest.raises(ValueError, match="duplicate"):
            CSRMatrix.from_coo(
                [0, 0], [1, 1], [2.0, 3.0], (2, 2), sum_duplicates=False
            )

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError, match="row index"):
            coo_to_csr_arrays(
                np.array([5]), np.array([0]), np.array([1.0]), (3, 3)
            )
        with pytest.raises(ValueError, match="col index"):
            coo_to_csr_arrays(
                np.array([0]), np.array([9]), np.array([1.0]), (3, 3)
            )

    def test_from_dense_roundtrip(self):
        d = random_dense((7, 5), 0.4, 0)
        m = CSRMatrix.from_dense(d)
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_eye(self):
        m = CSRMatrix.eye(4, value=2.0)
        np.testing.assert_array_equal(m.to_dense(), 2.0 * np.eye(4))

    def test_zeros(self):
        m = CSRMatrix.zeros((3, 5))
        assert m.nnz == 0
        assert m.shape == (3, 5)

    def test_validation_catches_bad_indptr(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            CSRMatrix(
                np.array([0, 2, 1]), np.array([0, 0]), np.array([1.0, 1.0]),
                (2, 2),
            )

    def test_validation_catches_bad_lengths(self):
        with pytest.raises(ValueError, match="length mismatch"):
            CSRMatrix(
                np.array([0, 1, 2]), np.array([0]), np.array([1.0]), (2, 2)
            )

    def test_validate_false_adopts_arrays_verbatim(self):
        # The trusted fast path for internally-constructed blocks: no
        # dtype coercion, no invariant checks, arrays adopted as-is.
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([0, 1], dtype=np.int64)
        data = np.array([1.0, 2.0])
        m = CSRMatrix(indptr, indices, data, (2, 2), validate=False)
        assert m.indptr is indptr and m.indices is indices and m.data is data
        np.testing.assert_array_equal(m.to_dense(), np.diag([1.0, 2.0]))

    def test_validate_false_skips_checks_validate_true_enforces(self):
        bad = (np.array([0, 2, 1]), np.array([0, 0]),
               np.array([1.0, 1.0]))
        # Trusted path: no error (caller vouches for the arrays).
        CSRMatrix(*bad, (2, 2), validate=False)
        # Explicit validate=True enforces even when check=False.
        with pytest.raises(ValueError, match="nondecreasing"):
            CSRMatrix(*bad, (2, 2), check=False, validate=True)

    def test_check_false_still_coerces_dtypes(self):
        # Historical middle tier: dtype coercion without invariant checks.
        m = CSRMatrix(
            np.array([0, 1], dtype=np.int32), np.array([0], dtype=np.int32),
            np.array([1], dtype=np.int32), (1, 1), check=False,
        )
        assert m.indptr.dtype == np.int64
        assert m.data.dtype == np.float64

    def test_internal_blocks_equal_validated_blocks(self):
        # The fast-path extraction produces the same matrices the
        # validating constructor would accept.
        d = random_dense((9, 9), 0.5, 3)
        m = CSRMatrix.from_dense(d)
        blk = m.block(2, 7, 1, 8)
        revalidated = CSRMatrix(blk.indptr, blk.indices, blk.data,
                                blk.shape, validate=True)
        np.testing.assert_array_equal(revalidated.to_dense(),
                                      d[2:7, 1:8])


class TestProperties:
    def test_degrees(self):
        m = CSRMatrix.from_dense(
            np.array([[1.0, 1, 0], [0, 0, 0], [1, 1, 1]])
        )
        np.testing.assert_array_equal(m.row_degrees(), [2, 0, 3])
        np.testing.assert_array_equal(m.col_degrees(), [2, 2, 1])
        assert m.average_degree() == pytest.approx(5 / 3)
        assert m.empty_row_count() == 1

    def test_density(self):
        m = CSRMatrix.eye(4)
        assert m.density == pytest.approx(0.25)

    def test_wire_bytes(self):
        m = CSRMatrix.eye(10)
        # 10 fp64 values + 10 int32 indices + 11 int32 indptr entries.
        assert m.nbytes_on_wire == 10 * 8 + 10 * 4 + 11 * 4

    def test_to_coo_roundtrip(self):
        d = random_dense((6, 6), 0.5, 3)
        m = CSRMatrix.from_dense(d)
        r, c, v = m.to_coo()
        m2 = CSRMatrix.from_coo(r, c, v, m.shape)
        assert m.allclose(m2)


class TestTranspose:
    def test_transpose_matches_dense(self):
        d = random_dense((5, 8), 0.4, 1)
        m = CSRMatrix.from_dense(d)
        np.testing.assert_array_equal(m.transpose().to_dense(), d.T)

    def test_transpose_involution(self):
        d = random_dense((6, 4), 0.5, 2)
        m = CSRMatrix.from_dense(d)
        assert m.transpose().transpose().allclose(m)

    def test_empty_transpose(self):
        m = CSRMatrix.zeros((3, 5))
        t = m.transpose()
        assert t.shape == (5, 3)
        assert t.nnz == 0

    @given(coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_transpose_property(self, coo):
        rows, cols, vals, shape = coo
        m = CSRMatrix.from_coo(rows, cols, vals, shape)
        np.testing.assert_allclose(
            m.transpose().to_dense(), m.to_dense().T, atol=1e-12
        )


class TestSlicing:
    def test_row_slice(self):
        d = random_dense((8, 5), 0.5, 4)
        m = CSRMatrix.from_dense(d)
        np.testing.assert_array_equal(m.row_slice(2, 6).to_dense(), d[2:6])

    def test_row_slice_bounds(self):
        m = CSRMatrix.eye(4)
        with pytest.raises(IndexError):
            m.row_slice(2, 6)

    def test_block_extraction(self):
        d = random_dense((8, 8), 0.6, 5)
        m = CSRMatrix.from_dense(d)
        np.testing.assert_array_equal(
            m.block(1, 5, 2, 7).to_dense(), d[1:5, 2:7]
        )

    def test_block_full_matrix(self):
        d = random_dense((4, 4), 0.8, 6)
        m = CSRMatrix.from_dense(d)
        np.testing.assert_array_equal(m.block(0, 4, 0, 4).to_dense(), d)

    def test_empty_block(self):
        m = CSRMatrix.eye(4)
        b = m.block(1, 1, 0, 4)
        assert b.shape == (0, 4)
        assert b.nnz == 0

    @given(coo_matrices(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_block_property(self, coo, data):
        rows, cols, vals, shape = coo
        m = CSRMatrix.from_coo(rows, cols, vals, shape)
        r0 = data.draw(st.integers(0, shape[0]))
        r1 = data.draw(st.integers(r0, shape[0]))
        c0 = data.draw(st.integers(0, shape[1]))
        c1 = data.draw(st.integers(c0, shape[1]))
        np.testing.assert_allclose(
            m.block(r0, r1, c0, c1).to_dense(),
            m.to_dense()[r0:r1, c0:c1],
            atol=1e-12,
        )


class TestScaling:
    def test_scale_rows(self):
        d = random_dense((4, 4), 0.7, 7)
        m = CSRMatrix.from_dense(d)
        s = np.array([1.0, 2.0, 0.5, 0.0])
        np.testing.assert_allclose(
            m.scale_rows(s).to_dense(), np.diag(s) @ d
        )

    def test_scale_cols(self):
        d = random_dense((4, 4), 0.7, 8)
        m = CSRMatrix.from_dense(d)
        s = np.array([1.0, 2.0, 0.5, 3.0])
        np.testing.assert_allclose(
            m.scale_cols(s).to_dense(), d @ np.diag(s)
        )

    def test_scale_shape_mismatch(self):
        m = CSRMatrix.eye(4)
        with pytest.raises(ValueError):
            m.scale_rows(np.ones(3))
        with pytest.raises(ValueError):
            m.scale_cols(np.ones(5))


class TestPermutation:
    def test_symmetric_permutation(self):
        d = random_dense((5, 5), 0.5, 9)
        m = CSRMatrix.from_dense(d)
        perm = np.array([2, 0, 4, 1, 3])
        permuted = m.permute(perm).to_dense()
        expected = np.zeros_like(d)
        for i in range(5):
            for j in range(5):
                expected[perm[i], perm[j]] = d[i, j]
        np.testing.assert_allclose(permuted, expected)

    def test_identity_permutation_is_noop(self):
        d = random_dense((6, 6), 0.5, 10)
        m = CSRMatrix.from_dense(d)
        assert m.permute(np.arange(6)).allclose(m)

    def test_invalid_permutation_rejected(self):
        m = CSRMatrix.eye(3)
        with pytest.raises(ValueError, match="not a permutation"):
            m.permute(np.array([0, 0, 1]))

    def test_nonsquare_rejected(self):
        m = CSRMatrix.zeros((2, 3))
        with pytest.raises(ValueError, match="square"):
            m.permute(np.array([0, 1]))

    def test_permutation_preserves_degree_multiset(self):
        d = random_dense((8, 8), 0.4, 11)
        m = CSRMatrix.from_dense(d)
        perm = np.random.default_rng(0).permutation(8)
        p = m.permute(perm)
        assert sorted(m.row_degrees()) == sorted(p.row_degrees())
