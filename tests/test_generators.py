"""Graph generators: determinism, shape, degree statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    edges_to_adjacency,
    erdos_renyi,
    grid_graph,
    ring_graph,
    rmat,
    star_graph,
    stochastic_block_model,
)


class TestEdgesToAdjacency:
    def test_symmetrize(self):
        a = edges_to_adjacency(np.array([0]), np.array([1]), 3)
        d = a.to_dense()
        assert d[0, 1] == 1.0 and d[1, 0] == 1.0

    def test_directed(self):
        a = edges_to_adjacency(np.array([0]), np.array([1]), 3, symmetrize=False)
        d = a.to_dense()
        assert d[0, 1] == 1.0 and d[1, 0] == 0.0

    def test_self_loops_dropped(self):
        a = edges_to_adjacency(np.array([1, 0]), np.array([1, 2]), 3)
        assert a.to_dense()[1, 1] == 0.0

    def test_parallel_edges_collapse_to_one(self):
        a = edges_to_adjacency(
            np.array([0, 0, 0]), np.array([1, 1, 1]), 2
        )
        assert a.nnz == 2  # (0,1) and (1,0)
        assert np.all(a.data == 1.0)


class TestErdosRenyi:
    def test_deterministic(self):
        a = erdos_renyi(200, 6.0, seed=42)
        b = erdos_renyi(200, 6.0, seed=42)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = erdos_renyi(200, 6.0, seed=1)
        b = erdos_renyi(200, 6.0, seed=2)
        assert not a.allclose(b)

    def test_average_degree_near_target(self):
        a = erdos_renyi(5000, 10.0, seed=0)
        assert a.average_degree() == pytest.approx(10.0, rel=0.1)

    def test_symmetric(self):
        a = erdos_renyi(100, 5.0, seed=3)
        assert a.allclose(a.transpose())

    def test_directed_not_symmetric(self):
        a = erdos_renyi(300, 8.0, seed=4, directed=True)
        assert not a.allclose(a.transpose())

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 1.0)
        with pytest.raises(ValueError):
            erdos_renyi(10, 10.0)


class TestRmat:
    def test_deterministic(self):
        a = rmat(scale=8, edge_factor=4, seed=7)
        b = rmat(scale=8, edge_factor=4, seed=7)
        assert a.allclose(b)

    def test_vertex_count(self):
        a = rmat(scale=7, edge_factor=4, seed=0)
        assert a.nrows == 128

    def test_truncation_to_n(self):
        a = rmat(scale=7, edge_factor=4, seed=0, n=100)
        assert a.nrows == 100

    def test_skewed_degrees(self):
        """R-MAT with Graph500 params produces heavy degree skew (the
        scale-free property the paper's load-balance argument needs)."""
        a = rmat(scale=11, edge_factor=8, seed=1)
        deg = a.row_degrees()
        nonzero = deg[deg > 0]
        assert deg.max() > 8 * np.median(nonzero)

    def test_uniform_rmat_is_not_skewed(self):
        # a=b=c=d=0.25 degenerates to (near) Erdos-Renyi.
        a = rmat(scale=11, edge_factor=8, a=0.25, b=0.25, c=0.25, seed=1)
        deg = a.row_degrees()
        assert deg.max() < 5 * np.median(deg[deg > 0])

    def test_symmetric(self):
        a = rmat(scale=6, edge_factor=4, seed=2)
        assert a.allclose(a.transpose())

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            rmat(scale=5, a=0.6, b=0.3, c=0.3)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat(scale=0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            rmat(scale=5, n=100)


class TestSBM:
    def test_community_structure(self):
        sizes = (50, 50, 50)
        a = stochastic_block_model(sizes, p_in=0.3, p_out=0.01, seed=0)
        d = a.to_dense()
        labels = np.repeat(np.arange(3), 50)
        same = d[labels[:, None] == labels[None, :]].sum()
        cross = d[labels[:, None] != labels[None, :]].sum()
        assert same > 5 * cross

    def test_zero_out_probability(self):
        a = stochastic_block_model((30, 30), p_in=0.2, p_out=0.0, seed=1)
        d = a.to_dense()
        assert d[:30, 30:].sum() == 0.0

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            stochastic_block_model((10, 10), p_in=0.1, p_out=0.5)


class TestToyGraphs:
    def test_ring_degrees(self):
        a = ring_graph(10)
        assert np.all(a.row_degrees() == 2)
        assert a.nnz == 20

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_star_degrees(self):
        a = star_graph(8)
        deg = a.row_degrees()
        assert deg[0] == 7
        assert np.all(deg[1:] == 1)

    def test_grid_structure(self):
        a = grid_graph(3, 4)
        assert a.nrows == 12
        deg = a.row_degrees()
        # Corners have degree 2, edges 3, interior 4.
        assert deg.min() == 2 and deg.max() == 4

    def test_grid_edge_count(self):
        r, c = 5, 7
        a = grid_graph(r, c)
        undirected = r * (c - 1) + c * (r - 1)
        assert a.nnz == 2 * undirected

    @given(n=st.integers(3, 50))
    @settings(max_examples=20, deadline=None)
    def test_ring_always_regular(self, n):
        a = ring_graph(n)
        assert np.all(a.row_degrees() == 2)
        assert a.allclose(a.transpose())
