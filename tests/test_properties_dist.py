"""Property-based verification of the distributed algorithms.

Hypothesis draws random problem shapes (graph size, degree, widths, rank
counts, variants) and asserts the invariant the whole reproduction rests
on: every parallel algorithm computes exactly the serial full-batch
gradient-descent trajectory.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import VirtualRuntime
from repro.dist import DistGCN1D, DistGCN2D, DistGCN15D, DistGCN3D
from repro.graph import make_synthetic
from repro.nn import GCN, SGD, SerialTrainer


def serial_losses(ds, widths, seed, epochs=2, lr=0.2):
    trainer = SerialTrainer(
        GCN(widths, seed=seed), ds.adjacency, optimizer=SGD(lr=lr)
    )
    hist = trainer.train(ds.features, ds.labels, epochs=epochs)
    return hist.losses


@st.composite
def problems(draw):
    n = draw(st.integers(min_value=24, max_value=120))
    degree = draw(st.floats(min_value=2.0, max_value=8.0))
    f_in = draw(st.integers(min_value=3, max_value=14))
    hidden = draw(st.integers(min_value=2, max_value=10))
    classes = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    ds = make_synthetic(
        n=n, avg_degree=min(degree, n / 5), f=f_in,
        n_classes=classes, seed=seed,
    )
    return ds, (f_in, hidden, classes), seed


class TestRandomizedEquivalence:
    @given(problem=problems(), p=st.sampled_from([2, 3, 5, 8]))
    @settings(max_examples=8, deadline=None)
    def test_1d_matches_serial(self, problem, p):
        ds, widths, seed = problem
        expected = serial_losses(ds, widths, seed)
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN1D(rt, ds.adjacency, widths, seed=seed,
                         optimizer=SGD(lr=0.2))
        hist = algo.fit(ds.features, ds.labels, epochs=2)
        np.testing.assert_allclose(hist.losses, expected, rtol=1e-9)

    @given(problem=problems(), p=st.sampled_from([4, 9]))
    @settings(max_examples=8, deadline=None)
    def test_2d_matches_serial(self, problem, p):
        ds, widths, seed = problem
        expected = serial_losses(ds, widths, seed)
        rt = VirtualRuntime.make_2d(p)
        algo = DistGCN2D(rt, ds.adjacency, widths, seed=seed,
                         optimizer=SGD(lr=0.2))
        hist = algo.fit(ds.features, ds.labels, epochs=2)
        np.testing.assert_allclose(hist.losses, expected, rtol=1e-9)

    @given(problem=problems(), pc=st.sampled_from([(4, 2), (6, 3), (8, 4)]))
    @settings(max_examples=6, deadline=None)
    def test_15d_matches_serial(self, problem, pc):
        ds, widths, seed = problem
        p, c = pc
        expected = serial_losses(ds, widths, seed)
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN15D(rt, ds.adjacency, widths, replication=c,
                          seed=seed, optimizer=SGD(lr=0.2))
        hist = algo.fit(ds.features, ds.labels, epochs=2)
        np.testing.assert_allclose(hist.losses, expected, rtol=1e-9)

    @given(problem=problems())
    @settings(max_examples=5, deadline=None)
    def test_3d_matches_serial(self, problem):
        ds, widths, seed = problem
        expected = serial_losses(ds, widths, seed)
        rt = VirtualRuntime.make_3d(8)
        algo = DistGCN3D(rt, ds.adjacency, widths, seed=seed,
                         optimizer=SGD(lr=0.2))
        hist = algo.fit(ds.features, ds.labels, epochs=2)
        np.testing.assert_allclose(hist.losses, expected, rtol=1e-9)

    @given(
        problem=problems(),
        variant=st.sampled_from(["outer", "outer_sparse", "transpose"]),
    )
    @settings(max_examples=6, deadline=None)
    def test_1d_variants_match_serial(self, problem, variant):
        ds, widths, seed = problem
        expected = serial_losses(ds, widths, seed)
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, ds.adjacency, widths, seed=seed,
                         optimizer=SGD(lr=0.2), variant=variant)
        hist = algo.fit(ds.features, ds.labels, epochs=2)
        np.testing.assert_allclose(hist.losses, expected, rtol=1e-9)


class TestRandomizedAccounting:
    @given(problem=problems(), p=st.sampled_from([4, 9, 16]))
    @settings(max_examples=8, deadline=None)
    def test_2d_byte_ledger_invariants(self, problem, p):
        """Structural invariants of the ledger on random problems."""
        ds, widths, seed = problem
        rt = VirtualRuntime.make_2d(p)
        algo = DistGCN2D(rt, ds.adjacency, widths, seed=seed)
        algo.setup(ds.features, ds.labels)
        st_ = algo.train_epoch(0)
        assert st_.dcomm_bytes >= 0 and st_.scomm_bytes >= 0
        if p > 1:
            assert st_.dcomm_bytes > 0
            # Max per-rank traffic cannot exceed the all-rank total.
            assert st_.max_rank_comm_bytes <= st_.comm_bytes
            # ... and must be at least the per-rank average.
            assert st_.max_rank_comm_bytes * p >= st_.comm_bytes
