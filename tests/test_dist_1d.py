"""The 1D block-row algorithm (Algorithm 1) and its variants."""

import numpy as np
import pytest

from repro.comm import Category, VirtualRuntime
from repro.dist.algo_1d import DistGCN1D
from repro.graph import make_synthetic


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=90, avg_degree=5, f=10, n_classes=4, seed=13)


WIDTHS = (10, 8, 4)


class TestVerification:
    @pytest.mark.parametrize("variant", ["symmetric", "outer", "transpose"])
    @pytest.mark.parametrize("p", [2, 4, 5])
    def test_matches_serial(self, ds, variant, p):
        """The paper's correctness claim: identical embeddings/weights up
        to floating-point accumulation error."""
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=1, variant=variant)
        diff = algo.verify_against_serial(ds.features, ds.labels, epochs=3, seed=1)
        assert diff < 1e-10

    def test_p1_degenerate_case(self, ds):
        rt = VirtualRuntime.make_1d(1)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=2)
        diff = algo.verify_against_serial(ds.features, ds.labels, epochs=2, seed=2)
        assert diff < 1e-12

    def test_uneven_rows(self):
        """n not divisible by p exercises the remainder block paths."""
        ds2 = make_synthetic(n=97, avg_degree=4, f=7, n_classes=3, seed=3)
        rt = VirtualRuntime.make_1d(6)
        algo = DistGCN1D(rt, ds2.adjacency, (7, 5, 3), seed=0)
        diff = algo.verify_against_serial(ds2.features, ds2.labels, epochs=2, seed=0)
        assert diff < 1e-10

    def test_auto_variant_picks_symmetric(self, ds):
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, variant="auto")
        assert algo.variant == "symmetric"

    def test_symmetric_requires_symmetric_matrix(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(40, 4.0, seed=1, directed=True))
        )
        rt = VirtualRuntime.make_1d(4)
        with pytest.raises(ValueError, match="symmetric"):
            DistGCN1D(rt, directed, (8, 4, 2), variant="symmetric")

    def test_directed_graph_outer_variant(self):
        """The general (directed) case uses the outer-product backward."""
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(50, 4.0, seed=2, directed=True))
        )
        rng = np.random.default_rng(0)
        feats = rng.standard_normal((50, 8))
        labels = rng.integers(0, 3, 50)
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, directed, (8, 6, 3), seed=4, variant="auto")
        assert algo.variant == "outer"
        diff = algo.verify_against_serial(feats, labels, epochs=3, seed=4)
        assert diff < 1e-10

    def test_unknown_variant(self, ds):
        rt = VirtualRuntime.make_1d(2)
        with pytest.raises(ValueError, match="variant"):
            DistGCN1D(rt, ds.adjacency, WIDTHS, variant="4d")


class TestCommunicationAccounting:
    def _epoch_stats(self, ds, variant, p=4):
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=0, variant=variant)
        algo.setup(ds.features, ds.labels)
        return algo.train_epoch(0)

    def test_dense_comm_only(self, ds):
        """1D moves only dense blocks (H broadcasts, reductions)."""
        st = self._epoch_stats(ds, "symmetric")
        assert st.dcomm_bytes > 0
        assert st.scomm_bytes == 0

    def test_transpose_variant_charges_trpose(self, ds):
        st = self._epoch_stats(ds, "transpose")
        assert st.bytes_by_category[Category.TRPOSE] > 0

    def test_outer_vs_symmetric_volume(self, ds):
        """Backward via outer product reduce-scatters n*f partials; the
        symmetric trade re-broadcasts instead.  Both must be within the
        paper's bounds; outer must include the reduce-scatter term."""
        sym = self._epoch_stats(ds, "symmetric")
        outer = self._epoch_stats(ds, "outer")
        assert sym.dcomm_bytes > 0 and outer.dcomm_bytes > 0

    def test_max_rank_bound(self, ds):
        """Per-process dense traffic stays within the broadcast-based 1D
        bound: roughly L * (n f_in + n f_mid + reductions)."""
        st = self._epoch_stats(ds, "symmetric", p=4)
        n = ds.num_vertices
        wb = 8  # float64
        # Very loose upper bound: 3 layers x 2 passes x full H + slack.
        bound = 3 * 2 * n * max(WIDTHS) * wb * 2
        assert st.max_rank_comm_bytes < bound

    def test_epoch_is_deterministic(self, ds):
        s1 = self._epoch_stats(ds, "symmetric")
        s2 = self._epoch_stats(ds, "symmetric")
        assert s1.dcomm_bytes == s2.dcomm_bytes
        assert s1.loss == pytest.approx(s2.loss)


class TestTrainingBehaviour:
    def test_loss_decreases(self, ds):
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=5)
        hist = algo.fit(ds.features, ds.labels, epochs=15)
        assert hist.final_loss < hist.losses[0]

    def test_train_before_setup_rejected(self, ds):
        rt = VirtualRuntime.make_1d(2)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS)
        with pytest.raises(RuntimeError, match="setup"):
            algo.train_epoch()

    def test_bad_feature_shape_rejected(self, ds):
        rt = VirtualRuntime.make_1d(2)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS)
        with pytest.raises(ValueError, match="features"):
            algo.setup(np.zeros((10, 10)), ds.labels)

    def test_history_breakdown(self, ds):
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=6)
        hist = algo.fit(ds.features, ds.labels, epochs=3)
        bd = hist.mean_breakdown()
        assert set(bd) == set(Category.ALL)
        assert hist.mean_epoch_seconds() > 0
