"""Hypersparsity analysis vs the paper's expectations (Section IV-A.3)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.sparse.distribute import distribute_sparse_1d_cols, distribute_sparse_2d
from repro.comm.mesh import Mesh2D
from repro.sparse.hypersparse import (
    aggregate_block_stats,
    block_sparsity_stats,
    expected_nonempty_rows,
    expected_nonempty_rows_asymptotic,
    sparse_vs_dense_intermediate_words,
)


class TestExpectations:
    def test_exact_formula_monotone_in_p(self):
        vals = [expected_nonempty_rows(10_000, 16.0, p) for p in (2, 8, 32, 128)]
        assert vals == sorted(vals, reverse=True)

    def test_asymptotic_matches_exact_for_large_p(self):
        """The paper's dn/P simplification holds when P >> d."""
        n, d = 100_000, 8.0
        for p in (64, 256):
            exact = expected_nonempty_rows(n, d, p)
            asym = expected_nonempty_rows_asymptotic(n, d, p)
            assert asym == pytest.approx(exact, rel=0.08)

    def test_asymptotic_overestimates_small_p(self):
        # With P < d, nearly all rows are nonempty: dn/P exceeds n.
        n, d = 1000, 50.0
        assert expected_nonempty_rows_asymptotic(n, d, 4) > n
        assert expected_nonempty_rows(n, d, 4) <= n

    def test_empirical_er_graph_matches_expectation(self):
        n, d, p = 4000, 10.0, 16
        a = erdos_renyi(n, d, seed=3)
        d_actual = a.nnz / n
        blocks = distribute_sparse_1d_cols(a, p)
        measured = np.mean(
            [block_sparsity_stats(b).nonempty_rows for b in blocks.values()]
        )
        expected = expected_nonempty_rows(n, d_actual, p)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_nonempty_rows(0, 5.0, 4)
        with pytest.raises(ValueError):
            expected_nonempty_rows(100, -1.0, 4)
        with pytest.raises(ValueError):
            expected_nonempty_rows(100, 200.0, 4)


class TestBlockStats:
    def test_stats_fields(self):
        a = erdos_renyi(500, 6.0, seed=1)
        stats = block_sparsity_stats(a)
        assert stats.nrows == 500
        assert stats.nnz == a.nnz
        assert stats.avg_degree == pytest.approx(a.nnz / 500)
        assert 0 <= stats.empty_row_fraction < 1

    def test_hypersparse_flag(self):
        """Buluc & Gilbert: hypersparse iff nnz < nrows."""
        a = erdos_renyi(2000, 4.0, seed=2)
        mesh = Mesh2D.square(64)
        blocks = distribute_sparse_2d(a, mesh)
        flags = [block_sparsity_stats(b).is_hypersparse for b in blocks.values()]
        # d/sqrt(P) = 4/8 = 0.5 < 1: 2D blocks go hypersparse.
        assert np.mean(flags) > 0.9

    def test_2d_partitioning_divides_degree_by_sqrt_p(self):
        """Section VI-a: local average degree falls by sqrt(P)."""
        a = erdos_renyi(3000, 12.0, seed=4)
        d_global = a.average_degree()
        mesh = Mesh2D.square(16)
        stats = aggregate_block_stats(distribute_sparse_2d(a, mesh))
        assert stats["mean_local_degree"] == pytest.approx(
            d_global / 4, rel=0.1
        )

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_block_stats({})


class TestSparseVsDenseIntermediate:
    def test_crossover_at_p_equals_d(self):
        """Sparse intermediates win exactly when P > d (Section IV-A.3)."""
        n, d, f = 100_000, 16.0, 64
        below = sparse_vs_dense_intermediate_words(n, d, f, 8)
        above = sparse_vs_dense_intermediate_words(n, d, f, 64)
        assert not below["sparse_wins"]
        assert above["sparse_wins"]
        assert below["crossover_p"] == d

    def test_dense_cost_is_nf(self):
        out = sparse_vs_dense_intermediate_words(1000, 8.0, 32, 16)
        assert out["dense_words"] == 1000 * 32
