"""The typed core: annotation coverage, plus mypy when it is present.

Two layers so the guarantee does not silently vanish with the tool:

* an ``ast``-based coverage check (always runs) -- every public
  function/method in the typed-core modules (``sparse/``, ``comm/``,
  ``dist/base.py``, ``parallel/runtime.py``) must annotate all of its
  parameters and its return type;
* a real ``mypy`` pass over the same modules using the
  ``[tool.mypy]`` block in ``pyproject.toml``, skipped when mypy is not
  installed (it is not a runtime dependency; CI installs it for the
  ``static-analysis`` job).
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys

import pytest

import repro

SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))
SRC = os.path.dirname(SRC_REPRO)

#: The typed core (mirrors [tool.mypy] in pyproject.toml).
TYPED_TARGETS = [
    os.path.join(SRC_REPRO, "sparse"),
    os.path.join(SRC_REPRO, "comm"),
    os.path.join(SRC_REPRO, "dist", "base.py"),
    os.path.join(SRC_REPRO, "parallel", "runtime.py"),
]


def _py_files(target):
    if target.endswith(".py"):
        yield target
        return
    for root, _, files in os.walk(target):
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def _public_defs(tree):
    """(qualname, node) for module-level defs and class methods that are
    part of the public API (dunders other than __init__ excluded)."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not stmt.name.startswith("_"):
                yield stmt.name, stmt
        elif isinstance(stmt, ast.ClassDef) and \
                not stmt.name.startswith("_"):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and (not sub.name.startswith("_")
                             or sub.name == "__init__"):
                    yield f"{stmt.name}.{sub.name}", sub


def _unannotated(func):
    args = func.args
    params = (args.posonlyargs + args.args + args.kwonlyargs
              + ([args.vararg] if args.vararg else [])
              + ([args.kwarg] if args.kwarg else []))
    missing = [a.arg for a in params
               if a.arg not in ("self", "cls") and a.annotation is None]
    if func.returns is None and func.name != "__init__":
        missing.append("<return>")
    return missing


def test_typed_core_annotation_coverage():
    gaps = []
    for target in TYPED_TARGETS:
        for path in _py_files(target):
            with open(path, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
            for qualname, func in _public_defs(tree):
                missing = _unannotated(func)
                if missing:
                    rel = os.path.relpath(path, SRC)
                    gaps.append(
                        f"{rel}:{func.lineno} {qualname}: "
                        f"missing {', '.join(missing)}"
                    )
    assert not gaps, "unannotated public APIs in the typed core:\n" + \
        "\n".join(gaps)


def test_mypy_clean_when_available():
    pytest.importorskip("mypy", reason="mypy is a CI-only dependency")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         os.path.join(SRC, os.pardir, "pyproject.toml")],
        capture_output=True, text=True,
        cwd=os.path.join(SRC, os.pardir),
    )
    assert proc.returncode == 0, \
        f"mypy reported errors:\n{proc.stdout}\n{proc.stderr}"
