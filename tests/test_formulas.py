"""The paper's closed-form communication costs (Section IV) and claims."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.formulas import (
    crossover_p_2d_vs_1d,
    ratio_1d_over_2d,
    words_15d,
    words_1d,
    words_1d_symmetric,
    words_1d_transpose,
    words_2d,
    words_3d,
)
from repro.config import SUMMIT

# A representative problem: the paper's simplifying regime d ~ f.
N, F, L = 1_000_000, 128, 3
NNZ = N * F  # nnz ~ n f  (assumption 2 of Section IV-C.5)


class TestFormulas:
    def test_1d_words_formula(self):
        est = words_1d(N, NNZ, F, L, 64)
        ec = N * 63 / 64
        assert est.words == pytest.approx(L * (ec * F + N * F + F * F))
        assert est.messages == pytest.approx(L * 3 * 6)

    def test_1d_symmetric_cheaper(self):
        plain = words_1d(N, NNZ, F, L, 64)
        sym = words_1d_symmetric(N, NNZ, F, L, 64)
        assert sym.words < plain.words

    def test_1d_transpose_adds_transposition(self):
        sym = words_1d_symmetric(N, NNZ, F, L, 64)
        tr = words_1d_transpose(N, NNZ, F, L, 64)
        assert tr.words == pytest.approx(sym.words + 2 * NNZ / 64)
        assert tr.messages == pytest.approx(sym.messages + 2 * 64 * 64)

    def test_2d_words_formula(self):
        p = 64
        est = words_2d(N, NNZ, F, L, p)
        sp = 8.0
        assert est.words == pytest.approx(
            L * (8 * N * F / sp + 2 * NNZ / sp + F * F)
        )
        assert est.messages == pytest.approx(L * (5 * sp + 3 * 6))

    def test_3d_words_formula(self):
        p = 64
        est = words_3d(N, NNZ, F, L, p)
        p23 = 16.0
        assert est.words == pytest.approx(
            L * (2 * NNZ / p23 + 12 * N * F / p23)
        )

    def test_custom_edgecut_lowers_1d(self):
        better = words_1d(N, NNZ, F, L, 64, edgecut=N / 10)
        default = words_1d(N, NNZ, F, L, 64)
        assert better.words < default.words

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            words_1d(N, NNZ, F, L, 0)
        with pytest.raises(ValueError):
            words_15d(N, NNZ, F, L, 8, 3)


class TestPaperClaims:
    def test_2d_moves_5_over_sqrt_p_of_1d(self):
        """Section IV-C.5: under the simplifying assumptions the 2D
        algorithm moves (5/sqrt(p)) of the 1D algorithm's data, i.e.
        ratio_1d_over_2d -> sqrt(p)/5."""
        for p in (64, 256, 1024):
            ratio = ratio_1d_over_2d(N, NNZ, F, L, p)
            assert ratio == pytest.approx(math.sqrt(p) / 5, rel=0.05)

    def test_crossover_near_p_25(self):
        """Section VI-d: '2D will only be competitive with 1D when
        sqrt(p) >= 5' -> crossover at P ~= 25 (36 for square P since
        the inequality is strict just below)."""
        cross = crossover_p_2d_vs_1d(N, NNZ, F, L)
        assert cross is not None
        assert 25 <= cross <= 49

    def test_3d_beats_2d_by_p_to_the_sixth(self):
        """Section I: 3D reduces words by another O(P^(1/6))."""
        for p in (64, 729):
            w2 = words_2d(N, NNZ, F, L, p).words
            w3 = words_3d(N, NNZ, F, L, p).words
            improvement = w2 / w3
            expected = p ** (1.0 / 6.0)
            # 10/14 constant ratio times P^(1/6).
            assert improvement == pytest.approx(
                (10.0 / 14.0) * expected, rel=0.05
            )

    def test_15d_interpolates(self):
        """1.5D with c=1 ~ 1D broadcast cost; larger c approaches 2D-ish
        volumes at the price of memory."""
        p = 64
        c1 = words_15d(N, NNZ, F, L, p, 1).words
        c8 = words_15d(N, NNZ, F, L, p, 8).words
        w1 = words_1d(N, NNZ, F, L, p).words
        assert c8 < c1
        assert c1 == pytest.approx(w1, rel=0.5)

    def test_15d_optimum_at_sqrt_p_over_2(self):
        """words(c) = 2nf/c + 4nfc/P is minimised at c* = sqrt(P/2)."""
        p = 32
        best_c = min(
            (c for c in (1, 2, 4, 8, 16, 32) if p % c == 0),
            key=lambda c: words_15d(N, NNZ, F, L, p, c).words,
        )
        assert best_c == 4  # sqrt(32/2) = 4

    def test_latency_ordering(self):
        """2D pays O(sqrt(P)) latency vs 1D's O(lg P) -- the reason the
        paper says 2D is wrong for small graphs (Section IV-C.5)."""
        p = 1024
        m1 = words_1d(N, NNZ, F, L, p).messages
        m2 = words_2d(N, NNZ, F, L, p).messages
        assert m2 > 5 * m1


class TestSeconds:
    def test_seconds_composition(self):
        est = words_2d(N, NNZ, F, L, 64)
        secs = est.seconds(SUMMIT, word_bytes=4)
        expected = est.messages * SUMMIT.alpha + est.words * 4 * SUMMIT.beta
        assert secs == pytest.approx(expected)

    @given(p=st.sampled_from([4, 16, 64, 256, 1024]))
    @settings(max_examples=10, deadline=None)
    def test_2d_words_decrease_with_p(self, p):
        if p > 4:
            prev = words_2d(N, NNZ, F, L, p // 4).words
            cur = words_2d(N, NNZ, F, L, p).words
            assert cur < prev

    @given(p=st.sampled_from([8, 64, 512]))
    @settings(max_examples=10, deadline=None)
    def test_3d_words_decrease_with_p(self, p):
        if p > 8:
            prev = words_3d(N, NNZ, F, L, p // 8).words
            cur = words_3d(N, NNZ, F, L, p).words
            assert cur < prev
