"""Semiring SpMM: the overloadable aggregation of Section I."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix
from repro.sparse.semiring import (
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    spmm_semiring,
)
from repro.sparse.spmm import spmm_numpy


def random_csr(m, n, density, seed):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((m, n))
    d[rng.random((m, n)) > density] = 0.0
    return CSRMatrix.from_dense(d), d


class TestPlusTimes:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_matches_standard_spmm(self, seed):
        """plus_times must agree with the real-field kernel everywhere
        (on non-empty rows; empty rows get the identity 0 in both)."""
        a, _ = random_csr(10, 8, 0.4, seed)
        b = np.random.default_rng(seed + 1).standard_normal((8, 4))
        np.testing.assert_allclose(
            spmm_semiring(a, b, PLUS_TIMES), spmm_numpy(a, b),
            rtol=1e-10, atol=1e-10,
        )


class TestMaxTimes:
    def test_max_pooling_aggregation(self):
        """max_times is the max-aggregator GNN of Xu et al. [32]."""
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0, 0.0]]))
        b = np.array([[3.0], [7.0], [100.0]])
        out = spmm_semiring(a, b, MAX_TIMES)
        assert out[0, 0] == 7.0  # max over the two neighbours; 100 unseen

    def test_empty_row_gets_identity(self):
        a = CSRMatrix.zeros((2, 2))
        out = spmm_semiring(a, np.ones((2, 3)), MAX_TIMES)
        assert np.all(out == -np.inf)


class TestTropical:
    def test_min_plus_is_shortest_path_relaxation(self):
        """(A (x) d) under min_plus relaxes one shortest-path step."""
        inf = np.inf
        # Path graph 0 - 1 - 2 with weight-1 edges plus self loops of 0.
        w = np.array([
            [0.0, 1.0, inf],
            [1.0, 0.0, 1.0],
            [inf, 1.0, 0.0],
        ])
        # CSR of finite entries; treat missing as +inf by construction.
        rows, cols = np.nonzero(np.isfinite(w))
        a = CSRMatrix.from_coo(rows, cols, w[rows, cols], (3, 3))
        d = np.array([[0.0], [inf], [inf]])     # distances from vertex 0
        d1 = spmm_semiring(a, d, MIN_PLUS)
        np.testing.assert_array_equal(d1.ravel(), [0.0, 1.0, inf])
        d2 = spmm_semiring(a, d1, MIN_PLUS)
        np.testing.assert_array_equal(d2.ravel(), [0.0, 1.0, 2.0])

    def test_max_plus_longest_single_step(self):
        a = CSRMatrix.from_dense(np.array([[2.0, 5.0]]))
        b = np.array([[1.0], [1.0]])
        out = spmm_semiring(a, b, MAX_PLUS)
        assert out[0, 0] == 6.0  # max(2+1, 5+1)


class TestBoolean:
    def test_or_and_is_bfs_level(self):
        """Boolean multiply computes one BFS frontier expansion."""
        ring = np.roll(np.eye(5), 1, axis=1) + np.roll(np.eye(5), -1, axis=1)
        a = CSRMatrix.from_dense(ring)
        reach = np.zeros((5, 1))
        reach[0] = 1.0
        step1 = spmm_semiring(a, reach, OR_AND)
        np.testing.assert_array_equal(
            step1.ravel().astype(bool), [False, True, False, False, True]
        )

    def test_idempotent_add(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 1.0]]))
        b = np.array([[1.0], [1.0]])
        out = spmm_semiring(a, b, OR_AND)
        assert out[0, 0] == 1.0  # True or True == True, not 2


class TestValidation:
    def test_shape_mismatch(self):
        a = CSRMatrix.eye(3)
        with pytest.raises(ValueError, match="incompatible"):
            spmm_semiring(a, np.ones((4, 2)), PLUS_TIMES)

    def test_custom_semiring_requires_ufunc(self):
        with pytest.raises(TypeError, match="ufunc"):
            Semiring("bad", lambda x, y: x, lambda a, b: a * b, 0.0)

    def test_zero_width_dense(self):
        a = CSRMatrix.eye(3)
        out = spmm_semiring(a, np.ones((3, 0)), PLUS_TIMES)
        assert out.shape == (3, 0)

    def test_trailing_empty_rows(self):
        """The reduceat trailing-segment hazard."""
        d = np.zeros((4, 4))
        d[0, 1] = 2.0  # only the first row has entries
        a = CSRMatrix.from_dense(d)
        b = np.ones((4, 2))
        out = spmm_semiring(a, b, PLUS_TIMES)
        np.testing.assert_array_equal(out[0], [2.0, 2.0])
        np.testing.assert_array_equal(out[1:], 0.0)
