"""Partition-aware training: Distribution, the 1D ghost variant, and the
ledger/oracle equalities of ISSUE 5.

The load-bearing contracts:

* the partition machinery is *only* a relabelling -- training through a
  ``Distribution`` is bit-identical to training on externally permuted
  data (``apply_random_permutation`` with the induced permutation), for
  all four algorithm families;
* the ghost variant's numerics are bitwise the dense all-gather path's
  (the compact operand holds exactly the referenced rows, monotonically
  remapped);
* the ghost exchange's ledger bytes equal
  ``ghost_rows_per_part(A, assignment, P) * f * itemsize`` exactly, the
  schedule oracle predicts the executed epoch byte for byte, and the
  multiprocess backend reproduces both -- which is what finally makes
  partition quality (Section IV-A.8) visible in the executed ledger.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.runtime import VirtualRuntime
from repro.comm.tracker import Category
from repro.dist import (
    ALGORITHMS,
    Distribution,
    ghost_structure,
    make_algorithm,
    make_distribution,
)
from repro.dist.algo_1d import DistGCN1D, resolve_1d_variant
from repro.graph import make_synthetic
from repro.graph.permutation import apply_random_permutation
from repro.partition import ghost_rows_per_part
from repro.simulate.schedule import (
    GatherRowsPhase,
    GraphModel,
    evaluate_schedule,
)

WB = 8  # fp64 bytes


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=120, avg_degree=6, f=10, n_classes=4, seed=3)


WIDTHS = (10, 8, 4)


def expansion_bytes(ghosts_total: int, widths) -> int:
    """Per-epoch ghost-exchange bytes: one exchange per forward layer
    (operand widths ``f^0..f^{L-1}``) and one per backward layer
    (``f^1..f^L``)."""
    return sum(ghosts_total * f * WB
               for f in list(widths[:-1]) + list(widths[1:]))


class TestDistribution:
    def test_block_is_identity(self):
        d = Distribution.block(10, 3)
        assert d.is_identity
        assert d.row_ranges == ((0, 4), (4, 7), (7, 10))
        x = np.arange(10.0)
        np.testing.assert_array_equal(d.permute_rows(x), x)

    def test_from_assignment_part_major(self):
        d = Distribution.from_assignment(
            np.array([1, 0, 1, 0, 2]), 3, kind="custom"
        )
        # Stable part-major: vertices 1,3 -> part 0; 0,2 -> part 1; 4 -> 2.
        np.testing.assert_array_equal(d.inv, [1, 3, 0, 2, 4])
        assert d.row_ranges == ((0, 2), (2, 4), (4, 5))
        x = np.arange(5.0) * 10
        y = d.permute_rows(x)
        np.testing.assert_array_equal(y, [10, 30, 0, 20, 40])
        np.testing.assert_array_equal(d.unpermute_rows(y), x)

    def test_empty_parts_yield_empty_ranges(self):
        d = Distribution.from_assignment(np.array([0, 0, 3]), 5)
        assert d.row_ranges == ((0, 2), (2, 2), (2, 2), (2, 3), (3, 3))
        np.testing.assert_array_equal(d.part_sizes, [2, 0, 0, 1, 0])

    def test_build_kinds(self, ds):
        for kind in ("block", "random", "multilevel"):
            d = Distribution.build(kind, ds.adjacency, 4, seed=0)
            assert d.kind == kind
            assert d.nparts == 4
            assert int(d.part_sizes.sum()) == ds.adjacency.nrows
        with pytest.raises(ValueError, match="unknown partition"):
            Distribution.build("metis", ds.adjacency, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="nparts"):
            Distribution.from_assignment(np.array([0]), 0)
        with pytest.raises(ValueError, match="part ids"):
            Distribution.from_assignment(np.array([5]), 2)

    def test_make_distribution_passthrough(self, ds):
        d = Distribution.block(ds.adjacency.nrows, 4)
        assert make_distribution(d, ds.adjacency, 4) is d
        assert make_distribution(None, ds.adjacency, 4) is None
        with pytest.raises(ValueError, match="unknown partition"):
            make_distribution("metis", ds.adjacency, 4)


class TestGhostVariantResolution:
    def test_ghost_rejects_directed_like_symmetric(self):
        """Satellite: directed operands fail at resolution, with the
        symmetric check's exception type and message shape."""
        for variant in ("symmetric", "ghost"):
            with pytest.raises(ValueError, match=(
                f"the {variant} variant requires a symmetric operand"
            )):
                resolve_1d_variant(variant, symmetric=False)

    def test_ghost_rejects_directed_at_construction(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(40, 4.0, seed=1, directed=True))
        )
        rt = VirtualRuntime.make_1d(4)
        with pytest.raises(ValueError, match="symmetric operand"):
            DistGCN1D(rt, directed, (8, 4, 2), variant="ghost")

    def test_emit_rejects_directed(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(40, 4.0, seed=1, directed=True))
        )
        with pytest.raises(ValueError, match="symmetric operand"):
            DistGCN1D.emit_comm_schedule(
                GraphModel.from_csr(directed), (8, 4, 2), 4,
                variant="ghost",
            )


class TestGhostNumerics:
    def test_ghost_bitwise_equals_symmetric(self, ds):
        """The compact operand is an exact row subset, so SpMM results
        (hence losses and predictions) are bitwise the dense path's."""
        rt_s = VirtualRuntime.make_1d(4)
        rt_g = VirtualRuntime.make_1d(4)
        sym = DistGCN1D(rt_s, ds.adjacency, WIDTHS, seed=1,
                        variant="symmetric")
        gho = DistGCN1D(rt_g, ds.adjacency, WIDTHS, seed=1,
                        variant="ghost")
        h_s = sym.fit(ds.features, ds.labels, epochs=3)
        h_g = gho.fit(ds.features, ds.labels, epochs=3)
        assert h_s.losses == h_g.losses
        np.testing.assert_array_equal(sym.predict(), gho.predict())

    @pytest.mark.parametrize("kind", ["block", "random", "multilevel"])
    def test_ghost_matches_serial_under_partition(self, ds, kind):
        d = Distribution.build(kind, ds.adjacency, 4, seed=0)
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=1,
                         variant="ghost", distribution=d)
        diff = algo.verify_against_serial(ds.features, ds.labels,
                                          epochs=3, seed=1)
        assert diff < 1e-10

    def test_outer_variant_with_uneven_partition(self, ds):
        """The reduce-scatter shards at the distribution's (uneven) row
        ranges -- the custom-bounds path."""
        d = Distribution.build("multilevel", ds.adjacency, 4, seed=0)
        assert len(set(map(int, d.part_sizes))) > 1  # genuinely uneven
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=1,
                         variant="outer", distribution=d)
        diff = algo.verify_against_serial(ds.features, ds.labels,
                                          epochs=3, seed=1)
        assert diff < 1e-10

    def test_p1_degenerate(self, ds):
        rt = VirtualRuntime.make_1d(1)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=2, variant="ghost")
        assert algo.verify_against_serial(ds.features, ds.labels,
                                          epochs=2, seed=2) < 1e-12


class TestPermutationInvarianceOracle:
    """Training through a Distribution == training on externally
    permuted data, bit for bit, for all four algorithm families."""

    CONFIGS = [
        ("1d", 4, {}),
        ("1d", 4, {"variant": "ghost"}),
        ("1.5d", 4, {"replication": 2}),
        ("2d", 4, {}),
        ("3d", 8, {}),
    ]

    @pytest.mark.parametrize("name,p,kw", CONFIGS)
    def test_distribution_equals_external_permutation(self, ds, name, p, kw):
        d = Distribution.build("random", ds.adjacency, p, seed=5)
        assert not d.is_identity
        a2, f2, l2, perm = apply_random_permutation(
            ds.adjacency, ds.features, ds.labels, perm=d.perm
        )
        np.testing.assert_array_equal(perm, d.perm)

        from repro.dist.registry import make_runtime_for

        rt_d = make_runtime_for(name, p)
        algo_d = ALGORITHMS[name](rt_d, ds.adjacency, WIDTHS, seed=1,
                                  distribution=d, **kw)
        hist_d = algo_d.fit(ds.features, ds.labels, epochs=3)

        rt_e = make_runtime_for(name, p)
        algo_e = ALGORITHMS[name](rt_e, a2, WIDTHS, seed=1, **kw)
        hist_e = algo_e.fit(f2, l2, epochs=3)

        assert hist_d.losses == hist_e.losses  # bit-identical
        # Predictions agree modulo the vertex relabelling (the
        # distribution run already maps back to the original order).
        np.testing.assert_array_equal(
            algo_d.predict(), algo_e.predict()[d.perm]
        )
        # And the ledgers agree byte for byte: same collectives, same
        # payload shapes -- the relabelling moves no extra data.
        st_d, st_e = hist_d.epochs[-1], hist_e.epochs[-1]
        assert st_d.bytes_by_category == st_e.bytes_by_category

    def test_evaluate_uses_original_vertex_order(self, ds):
        d = Distribution.build("random", ds.adjacency, 4, seed=5)
        rt = VirtualRuntime.make_1d(4)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=1,
                         variant="ghost", distribution=d)
        algo.fit(ds.features, ds.labels, epochs=2)
        loss, acc = algo.evaluate(ds.labels)
        assert np.isfinite(loss) and 0.0 <= acc <= 1.0


class TestGhostLedgerOracle:
    """Acceptance: at P=8 on an R-MAT stand-in, ghost expansion bytes
    match ``ghost_rows_per_part * f * itemsize`` exactly, the simulate
    oracle predicts the executed ledger byte for byte, and multilevel
    beats block strictly."""

    P = 8

    @pytest.fixture(scope="class")
    def rmat_ds(self):
        return make_synthetic(n=256, avg_degree=8, f=12, n_classes=4,
                              seed=7)

    def _epoch(self, rmat_ds, dist):
        rt = VirtualRuntime.make_1d(self.P)
        algo = DistGCN1D(rt, rmat_ds.adjacency, (12, 8, 4), seed=0,
                         variant="ghost", distribution=dist)
        algo.setup(rmat_ds.features, rmat_ds.labels)
        return algo, algo.train_epoch(0)

    @pytest.mark.parametrize("kind", ["block", "multilevel"])
    def test_ledger_matches_ghost_rows_prediction(self, rmat_ds, kind):
        dist = Distribution.build(kind, rmat_ds.adjacency, self.P, seed=0)
        algo, stats = self._epoch(rmat_ds, dist)
        ghosts = ghost_rows_per_part(rmat_ds.adjacency, dist.assignment,
                                     self.P)
        # The executed plan's per-rank ghost counts ARE the edge-cut
        # metric's r_i vector (relabelling is a neighbour-set bijection).
        np.testing.assert_array_equal(ghosts, algo._ghost.ghost_rows)
        # Schedule oracle: gather phases carry exactly r_i * f * WB ...
        sched = DistGCN1D.emit_comm_schedule(
            GraphModel.from_dataset(rmat_ds), (12, 8, 4), self.P,
            variant="ghost", distribution=dist,
        )
        gather_bytes = sum(
            int(ph.nbytes.sum()) for ph in sched.phases
            if isinstance(ph, GatherRowsPhase)
        )
        assert gather_bytes == expansion_bytes(int(ghosts.sum()), (12, 8, 4))
        # ... and the priced schedule reproduces the executed epoch's
        # dcomm ledger byte for byte (seconds to the float).
        res = evaluate_schedule(sched, algo.rt.profile)
        assert res.bytes_by_category["dcomm"] == stats.dcomm_bytes
        assert (res.seconds_by_category["dcomm"]
                == stats.seconds_by_category["dcomm"])

    def test_multilevel_strictly_beats_block(self, rmat_ds):
        per_kind = {}
        for kind in ("block", "multilevel"):
            dist = Distribution.build(kind, rmat_ds.adjacency, self.P,
                                      seed=0)
            ghosts = ghost_rows_per_part(rmat_ds.adjacency,
                                         dist.assignment, self.P)
            _, stats = self._epoch(rmat_ds, dist)
            per_kind[kind] = (int(ghosts.sum()), stats.dcomm_bytes)
        # Fewer total ghost rows, hence strictly fewer expansion bytes;
        # the non-expansion dcomm terms (loss/weight all-reduces) are
        # partition-independent, so whole-epoch dcomm drops too.
        assert per_kind["multilevel"][0] < per_kind["block"][0]
        assert per_kind["multilevel"][1] < per_kind["block"][1]
        diff_bytes = per_kind["block"][1] - per_kind["multilevel"][1]
        diff_ghosts = per_kind["block"][0] - per_kind["multilevel"][0]
        assert diff_bytes == expansion_bytes(diff_ghosts, (12, 8, 4))

    def test_uniform_oracle_has_partition_term(self):
        """Shape-only graphs still price a ghost phase (the expected
        -occupancy estimate), so sweeps can include the variant."""
        g = GraphModel.uniform(4096, 4096 * 16, features=32, n_classes=4)
        sched = DistGCN1D.emit_comm_schedule(g, (32, 16, 4), 8,
                                             variant="ghost")
        gather = [ph for ph in sched.phases
                  if isinstance(ph, GatherRowsPhase)]
        assert len(gather) == 4  # 2 forward + 2 backward layers
        assert all(ph.nbytes.sum() > 0 for ph in gather)


class TestGatherRowsPrimitive:
    def test_charged_bytes_and_data(self):
        rt = VirtualRuntime.make_1d(3)
        blocks = {
            0: np.arange(8.0).reshape(4, 2),
            1: np.arange(8.0, 14.0).reshape(3, 2),
            2: np.arange(14.0, 20.0).reshape(3, 2),
        }
        pairs = [
            (0, 1, np.array([1, 3])),   # rank 1 pulls 2 rows from 0
            (2, 1, np.array([0])),      # and 1 row from 2
            (1, 2, np.array([2])),      # rank 2 pulls 1 row from 1
        ]
        before = rt.tracker.total_bytes(Category.DCOMM)
        out = rt.coll.gather_rows(pairs, blocks, row_nbytes=16)
        np.testing.assert_array_equal(out[0], [[2.0, 3.0], [6.0, 7.0]])
        np.testing.assert_array_equal(out[1], [[14.0, 15.0]])
        np.testing.assert_array_equal(out[2], [[12.0, 13.0]])
        assert not out[0].flags.writeable
        # Receive-side exact bytes: rank 1 gets 3 rows, rank 2 gets 1.
        assert rt.tracker.total_bytes(Category.DCOMM) - before == 4 * 16
        assert rt.tracker.rank_totals(1)[Category.DCOMM].bytes == 3 * 16
        assert rt.tracker.rank_totals(1)[Category.DCOMM].messages == 2

    def test_self_send_rejected(self):
        rt = VirtualRuntime.make_1d(2)
        with pytest.raises(ValueError, match="self-send"):
            rt.coll.gather_rows(
                [(0, 0, np.array([0]))], {0: np.zeros((1, 1))},
                row_nbytes=8,
            )

    def test_ghost_structure_matches_edgecut(self, ds):
        d = Distribution.build("multilevel", ds.adjacency, 4, seed=1)
        g = ghost_structure(d.permute_matrix(ds.adjacency), d.row_ranges)
        np.testing.assert_array_equal(
            ghost_rows_per_part(ds.adjacency, d.assignment, 4),
            g.ghost_rows,
        )
        # Every pair's rows land in its slot: widths are consistent.
        for r in range(4):
            slots = sum(hi - lo for (s, dst, _), (lo, hi)
                        in zip(g.pairs, g.pair_slots) if dst == r)
            assert slots == g.ghost_rows[r]
            assert g.own_pos[r].size + g.ghost_rows[r] == g.width[r]


class TestConstructionValidation:
    def test_distribution_size_mismatch(self, ds):
        rt = VirtualRuntime.make_1d(4)
        with pytest.raises(ValueError, match="covers"):
            DistGCN1D(rt, ds.adjacency, WIDTHS,
                      distribution=Distribution.block(7, 4))

    def test_distribution_part_count_mismatch(self, ds):
        rt = VirtualRuntime.make_1d(4)
        with pytest.raises(ValueError, match="parts"):
            DistGCN1D(rt, ds.adjacency, WIDTHS,
                      distribution=Distribution.block(ds.adjacency.nrows, 3))

    def test_emit_part_count_mismatch(self, ds):
        with pytest.raises(ValueError, match="parts"):
            DistGCN1D.emit_comm_schedule(
                GraphModel.from_dataset(ds), WIDTHS, 4, variant="ghost",
                distribution=Distribution.block(ds.adjacency.nrows, 3),
            )


class TestProcessBackendGhost:
    def test_ghost_ledger_and_losses_match_virtual(self, ds):
        """The acceptance criterion's 'on virtual AND process backends':
        the ghost exchange really crosses process boundaries and the
        ledger (hence the ghost_rows prediction) is byte-identical."""
        d = Distribution.build("multilevel", ds.adjacency, 4, seed=0)
        kw = dict(hidden=8, seed=0, variant="ghost", partition=d)
        v = make_algorithm("1d", 4, ds, **kw)
        hv = v.fit(ds.features, ds.labels, epochs=3)
        p = make_algorithm("1d", 4, ds, backend="process", workers=2, **kw)
        try:
            hp = p.fit(ds.features, ds.labels, epochs=3)
            lp_v, lp_p = v.predict(), p.predict()
        finally:
            p.rt.close()
        assert hv.losses == hp.losses
        for ev, ep in zip(hv.epochs, hp.epochs):
            assert ev.bytes_by_category == ep.bytes_by_category
            assert ev.seconds_by_category == ep.seconds_by_category
        np.testing.assert_array_equal(lp_v, lp_p)

    def test_verify_against_serial_with_distribution(self, ds):
        """The driver-side serial reference relabels its inputs the same
        way the workers' operand is relabelled."""
        algo = make_algorithm("1d", 4, ds, hidden=8, seed=0,
                              variant="ghost", partition="multilevel",
                              backend="process", workers=2)
        try:
            diff = algo.verify_against_serial(ds.features, ds.labels,
                                              epochs=2)
        finally:
            algo.rt.close()
        assert diff < 1e-10
