"""Multilevel (Metis-like) partitioner: balance and cut quality."""

import numpy as np
import pytest

from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    rmat,
    stochastic_block_model,
)
from repro.partition.edgecut import edge_cut_stats
from repro.partition.multilevel import MultilevelPartitioner, multilevel_partition
from repro.partition.random_part import partition_sizes, random_partition


class TestBasics:
    def test_every_vertex_assigned(self):
        a = erdos_renyi(200, 6.0, seed=0)
        assignment = multilevel_partition(a, 4, seed=0)
        assert assignment.shape == (200,)
        assert set(np.unique(assignment)) <= set(range(4))

    def test_balance_within_tolerance(self):
        a = erdos_renyi(400, 8.0, seed=1)
        part = MultilevelPartitioner(nparts=8, seed=1, imbalance_tol=0.05)
        result = part.partition(a)
        sizes = partition_sizes(result.assignment, 8)
        assert sizes.max() <= (400 / 8) * 1.15  # tolerance + rounding slack

    def test_deterministic(self):
        a = erdos_renyi(200, 5.0, seed=2)
        a1 = multilevel_partition(a, 4, seed=7)
        a2 = multilevel_partition(a, 4, seed=7)
        np.testing.assert_array_equal(a1, a2)

    def test_single_part(self):
        a = erdos_renyi(50, 4.0, seed=3)
        assignment = multilevel_partition(a, 1)
        assert np.all(assignment == 0)

    def test_tiny_graph_more_parts_than_vertices(self):
        a = erdos_renyi(3, 1.0, seed=4)
        assignment = multilevel_partition(a, 8)
        assert assignment.shape == (3,)

    def test_trailing_empty_convention_matches_block(self):
        """Satellite: nparts > n follows the shared trailing-empty
        convention -- identical to block_partition, with the empty parts
        explicit in partition_sizes."""
        from repro.partition.random_part import block_partition

        a = erdos_renyi(5, 1.5, seed=4)
        assignment = multilevel_partition(a, 9)
        np.testing.assert_array_equal(assignment, block_partition(5, 9))
        sizes = partition_sizes(assignment, 9)
        np.testing.assert_array_equal(sizes, [1, 1, 1, 1, 1, 0, 0, 0, 0])

    def test_nonsquare_rejected(self):
        from repro.sparse.csr import CSRMatrix

        with pytest.raises(ValueError, match="square"):
            MultilevelPartitioner(nparts=2).partition(CSRMatrix.zeros((2, 3)))

    def test_invalid_nparts(self):
        a = erdos_renyi(20, 3.0, seed=5)
        with pytest.raises(ValueError):
            MultilevelPartitioner(nparts=0).partition(a)


class TestQuality:
    def test_beats_random_on_sbm(self):
        """On a community graph the multilevel cut must crush random --
        this is the structured case where partitioning shines."""
        a = stochastic_block_model((80, 80, 80, 80), p_in=0.15, p_out=0.005, seed=0)
        n = a.nrows
        ml = edge_cut_stats(a, multilevel_partition(a, 4, seed=0), 4)
        rnd = edge_cut_stats(a, random_partition(n, 4, seed=0), 4)
        assert ml.total_cut_edges < 0.5 * rnd.total_cut_edges

    def test_beats_random_on_grid(self):
        a = grid_graph(20, 20)
        ml = edge_cut_stats(a, multilevel_partition(a, 4, seed=1), 4)
        rnd = edge_cut_stats(a, random_partition(400, 4, seed=1), 4)
        assert ml.total_cut_edges < 0.5 * rnd.total_cut_edges

    def test_total_vs_max_gap_on_scale_free(self):
        """Section IV-A.8's observation: on a scale-free graph the TOTAL
        cut improves far more than the MAX per-process cut (the quantity
        that actually bounds bulk-synchronous runtime)."""
        a = rmat(scale=10, edge_factor=10, seed=0)
        n = a.nrows
        p = 8
        ml = edge_cut_stats(a, multilevel_partition(a, p, seed=0), p)
        rnd = edge_cut_stats(a, random_partition(n, p, seed=0), p)
        total_reduction = 1 - ml.total_cut_edges / rnd.total_cut_edges
        max_reduction = 1 - ml.max_part_cut_edges / rnd.max_part_cut_edges
        # Partitioning helps totals...
        assert total_reduction > 0
        # ...but helps the bulk-synchronous bottleneck strictly less.
        assert max_reduction < total_reduction

    def test_coarsening_reduces_levels(self):
        a = erdos_renyi(2000, 8.0, seed=6)
        result = MultilevelPartitioner(nparts=4, seed=0).partition(a)
        assert result.levels > 1
        assert result.coarsest_size < 2000

    def test_refinement_moves_happen(self):
        a = stochastic_block_model((60, 60), p_in=0.2, p_out=0.02, seed=2)
        result = MultilevelPartitioner(nparts=2, seed=0).partition(a)
        assert result.refinement_moves > 0
