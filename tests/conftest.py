"""Shared fixtures: small deterministic datasets and runtimes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import VirtualRuntime
from repro.config import SUMMIT, ZERO_COST
from repro.graph import make_synthetic


@pytest.fixture(scope="session")
def tiny_dataset():
    """~60 vertices, enough structure to train a GCN, fast to run."""
    return make_synthetic(n=60, avg_degree=4, f=8, n_classes=3, seed=11)


@pytest.fixture(scope="session")
def small_dataset():
    """~150 vertices; used for the distributed-vs-serial verification."""
    return make_synthetic(n=150, avg_degree=6, f=12, n_classes=4, seed=5)


@pytest.fixture(scope="session")
def uniform_dataset():
    """Erdos-Renyi dataset (uniform nnz) for cost-model validation."""
    return make_synthetic(
        n=300, avg_degree=8, f=24, n_classes=6, seed=2, generator="erdos_renyi"
    )


@pytest.fixture
def rt4():
    return VirtualRuntime.make_1d(4)


@pytest.fixture
def rt2d4():
    return VirtualRuntime.make_2d(4)


@pytest.fixture
def zero_cost_rt4():
    return VirtualRuntime.make_1d(4, ZERO_COST)
