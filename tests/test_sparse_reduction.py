"""The sparse outer-product reduction variant (Section IV-A.3).

"The theoretical sparsity analysis ... makes a case for taking advantage
of sparsity for intermediate low-rank products for large P" -- the
``outer_sparse`` 1D variant implements that SparCML-style reduction.
"""

import numpy as np
import pytest

from repro.comm import VirtualRuntime
from repro.dist.algo_1d import DistGCN1D
from repro.graph import make_synthetic


@pytest.fixture(scope="module")
def sparse_ds():
    """Low degree, so P > d is reachable with few ranks."""
    return make_synthetic(
        n=220, avg_degree=3, f=12, n_classes=3, seed=53,
        generator="erdos_renyi",
    )


WIDTHS = (12, 8, 3)


class TestCorrectness:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_matches_serial(self, sparse_ds, p):
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN1D(
            rt, sparse_ds.adjacency, WIDTHS, seed=1, variant="outer_sparse"
        )
        diff = algo.verify_against_serial(
            sparse_ds.features, sparse_ds.labels, epochs=3, seed=1
        )
        assert diff < 1e-10

    def test_identical_losses_to_dense_outer(self, sparse_ds):
        """Sparse routing changes bytes, never numerics."""
        losses = {}
        for variant in ("outer", "outer_sparse"):
            rt = VirtualRuntime.make_1d(4)
            algo = DistGCN1D(
                rt, sparse_ds.adjacency, WIDTHS, seed=2, variant=variant
            )
            hist = algo.fit(sparse_ds.features, sparse_ds.labels, epochs=4)
            losses[variant] = hist.losses
        np.testing.assert_allclose(
            losses["outer"], losses["outer_sparse"], rtol=1e-12
        )

    def test_directed_graph(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(60, 3.0, seed=3, directed=True))
        )
        rng = np.random.default_rng(0)
        feats = rng.standard_normal((60, 8))
        labels = rng.integers(0, 3, 60)
        rt = VirtualRuntime.make_1d(6)
        algo = DistGCN1D(rt, directed, (8, 6, 3), seed=4,
                         variant="outer_sparse")
        diff = algo.verify_against_serial(feats, labels, epochs=2, seed=4)
        assert diff < 1e-10


class TestBandwidth:
    def _dcomm(self, ds, variant, p):
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN1D(rt, ds.adjacency, WIDTHS, seed=0, variant=variant)
        algo.setup(ds.features, ds.labels)
        return algo.train_epoch(0).dcomm_bytes

    def test_sparse_wins_when_p_exceeds_degree(self, sparse_ds):
        """d ~ 4 (with self loops), P = 16 > d: sparse reduction must ship
        fewer dense bytes."""
        dense = self._dcomm(sparse_ds, "outer", 16)
        sparse = self._dcomm(sparse_ds, "outer_sparse", 16)
        assert sparse < dense

    def test_savings_grow_with_p(self, sparse_ds):
        """The expected nonempty fraction 1 - e^{-d/P} falls with P, so
        the sparse variant's relative saving grows."""
        saving = {}
        for p in (4, 16):
            dense = self._dcomm(sparse_ds, "outer", p)
            sparse = self._dcomm(sparse_ds, "outer_sparse", p)
            saving[p] = 1 - sparse / dense
        assert saving[16] > saving[4]
