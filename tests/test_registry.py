"""The registry/facade layer: names, grids, error messages, CLI smoke."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dist import ALGORITHMS, make_algorithm, make_runtime_for
from repro.dist.base import DistAlgorithm
from repro.graph import make_synthetic


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=48, avg_degree=4, f=6, n_classes=3, seed=41)


class TestRegistry:
    def test_registry_contents(self):
        assert set(ALGORITHMS) == {"1d", "1.5d", "2d", "3d"}
        for cls in ALGORITHMS.values():
            assert issubclass(cls, DistAlgorithm)

    @pytest.mark.parametrize("name", ["4d", "hypercube", "", "summa"])
    def test_unknown_names_rejected_everywhere(self, ds, name):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_runtime_for(name, 4)
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_algorithm(name, 4, ds)

    def test_unknown_error_lists_available(self):
        with pytest.raises(ValueError, match="1.5d"):
            make_runtime_for("4d", 4)

    def test_names_case_insensitive(self, ds):
        assert make_runtime_for("2D", 4).mesh.ndim == 2
        algo = make_algorithm("1D", 2, ds, hidden=4)
        assert algo.rt.size == 2


class TestGridValidation:
    def test_rectangular_grid_for_non_square_p(self):
        rt = make_runtime_for("2d", 6, grid=(2, 3))
        assert (rt.mesh.rows, rt.mesh.cols) == (2, 3)

    def test_non_square_p_rejected_without_grid(self):
        with pytest.raises(ValueError, match="square"):
            make_runtime_for("2d", 6)

    def test_grid_must_tile_p(self):
        with pytest.raises(ValueError, match="tile"):
            make_runtime_for("2d", 8, grid=(2, 3))

    @pytest.mark.parametrize("name", ["1d", "1.5d", "3d"])
    def test_grid_only_valid_for_2d(self, name):
        with pytest.raises(ValueError, match="grid"):
            make_runtime_for(name, 8, grid=(2, 4))

    def test_non_cube_p_rejected_for_3d(self):
        with pytest.raises(ValueError, match="cube"):
            make_runtime_for("3d", 12)

    def test_grid_passes_through_make_algorithm(self, ds):
        algo = make_algorithm("2d", 6, ds, hidden=4, grid=(3, 2))
        assert (algo.mesh.rows, algo.mesh.cols) == (3, 2)


class TestCliSmoke:
    def test_train_1d_on_tiny_synthetic_exits_zero(self):
        """``python -m repro train --algorithm 1d --gpus 4`` end to end."""
        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "train",
                "--algorithm", "1d", "--gpus", "4",
                "--vertices", "48", "--features", "6",
                "--hidden", "4", "--epochs", "2",
            ],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "loss" in proc.stdout
        assert "communication" in proc.stdout
