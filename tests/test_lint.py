"""repro-lint: engine semantics, per-rule fixtures, and ship-cleanliness.

Every rule gets three fixture files under ``tests/lint_fixtures/``:
a positive (the violation fires), a negative (the clean idiom does not),
and a suppressed one (an inline ``repro-lint: disable`` with a reason
silences it).  The fixtures for scoped rules live under a fake
``repro/<dir>/`` tree so the path-scope checks exercise for real.

The last test is the ship gate: the actual ``src/repro`` package must
lint clean -- the same check CI runs via ``repro lint src/``.
"""

import os

import pytest

import repro
from repro.analysis.lint import (
    Violation,
    default_rules,
    format_violations,
    lint_file,
    run_lint,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")
SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))


def lint_fixture(relpath):
    return lint_file(os.path.join(FIXTURES, relpath), default_rules())


def ids(violations):
    return [v.rule_id for v in violations]


# --------------------------------------------------------------------- #
# engine semantics
# --------------------------------------------------------------------- #
def test_violation_render_format():
    v = Violation("R1", "a/b.py", 3, 7, "bad draw", "seed it")
    assert v.render() == "a/b.py:3:7: R1 bad draw  [fix: seed it]"


def test_trailing_suppression_shields_own_line():
    src = "import pickle\n\nx = pickle.loads(b'')  # repro-lint: disable=R7 -- test\n"
    assert lint_file("anything.py", default_rules(), source=src) == []


def test_comment_only_suppression_shields_next_line():
    src = (
        "import pickle\n"
        "# repro-lint: disable=R7 -- shields the line below\n"
        "x = pickle.loads(b'')\n"
    )
    assert lint_file("anything.py", default_rules(), source=src) == []


def test_suppression_is_per_rule_and_per_line():
    # A R7 suppression does not silence other rules on the same line,
    # and does not reach any other line.
    src = (
        "import pickle\n"
        "a = pickle.loads(b'')  # repro-lint: disable=R1 -- wrong rule id\n"
        "b = pickle.loads(b'')\n"
    )
    got = lint_file("anything.py", default_rules(), source=src)
    assert ids(got) == ["R7", "R7"]


def test_multi_rule_suppression():
    src = (
        "import pickle\n"
        "import numpy as np\n"
        "x = pickle.loads(np.random.rand(1).tobytes())"
        "  # repro-lint: disable=R1,R7 -- both at once\n"
    )
    assert lint_file("anything.py", default_rules(), source=src) == []


def test_reasonless_suppression_reports_r0_but_still_suppresses():
    got = lint_fixture("r0_noreason.py")
    assert ids(got) == ["R0"]  # R7 swallowed, R0 reported in its place
    assert "reason" in got[0].message


def test_syntax_error_reports_e1():
    got = lint_fixture("e1_syntax.py")
    assert ids(got) == ["E1"]
    assert "syntax error" in got[0].message


def test_test_files_are_exempt_from_r1():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert lint_file("tests/test_whatever.py", default_rules(),
                     source=src) == []
    assert ids(lint_file("tools/helper.py", default_rules(),
                         source=src)) == ["R1"]


def test_run_lint_walks_trees_and_counts_files():
    violations, nfiles = run_lint([FIXTURES])
    assert nfiles == len(
        [f for root, _, files in os.walk(FIXTURES)
         for f in files if f.endswith(".py")]
    )
    assert violations  # the positive fixtures fire

    text = format_violations(violations, nfiles)
    assert f"{len(violations)} violation(s) in {nfiles} file(s)" in text

    clean = format_violations([], 3)
    assert clean == "clean: 3 file(s), 0 violations"


# --------------------------------------------------------------------- #
# per-rule fixtures: positive / negative / suppressed
# --------------------------------------------------------------------- #
def test_r1_unseeded_randomness():
    got = lint_fixture("r1_bad.py")
    assert ids(got) == ["R1", "R1"]
    assert "np.random.rand" in got[0].message
    assert "OS entropy" in got[1].message
    assert lint_fixture("r1_ok.py") == []
    assert lint_fixture("r1_suppressed.py") == []


def test_r2_unordered_iteration():
    got = lint_fixture("repro/comm/r2_bad.py")
    assert ids(got) == ["R2", "R2", "R2"]
    assert all("salted order" in v.message for v in got)
    assert lint_fixture("repro/comm/r2_ok.py") == []
    assert lint_fixture("repro/comm/r2_suppressed.py") == []


def test_r2_is_scoped_to_ordered_hot_paths():
    src = "def f(xs):\n    return [x for x in set(xs)]\n"
    assert ids(lint_file("repro/comm/util.py", default_rules(),
                         source=src)) == ["R2"]
    # analysis/ is out of scope: iteration order there is cosmetic
    assert lint_file("repro/analysis/util.py", default_rules(),
                     source=src) == []


def test_r3_charge_data_pairing():
    got = lint_fixture("repro/dist/r3_bad.py")
    assert ids(got) == ["R3"]
    assert "allgather_charges" in got[0].message
    assert "allgather_data" in got[0].message
    assert "exchange" in got[0].message  # names the offending function
    assert lint_fixture("repro/dist/r3_ok.py") == []
    assert lint_fixture("repro/dist/r3_suppressed.py") == []


def test_r4_unguarded_instrumentation():
    got = lint_fixture("r4_bad.py")
    assert ids(got) == ["R4", "R4"]
    assert lint_fixture("r4_ok.py") == []
    assert lint_fixture("r4_suppressed.py") == []


def test_r5_wall_clock():
    assert ids(lint_fixture("repro/comm/r5_bad.py")) == ["R5"]
    assert ids(lint_fixture("repro/comm/r5_from_import.py")) == ["R5"]
    assert lint_fixture("repro/comm/r5_ok.py") == []
    assert lint_fixture("repro/comm/r5_suppressed.py") == []


def test_r6_export_table_drift():
    got = lint_fixture("repro/fakepkg/__init__.py")
    assert ids(got) == ["R6"] * 4
    messages = "\n".join(v.message for v in got)
    assert "ghost_thing" in messages     # key missing from target module
    assert "orphan" in messages          # target module missing entirely
    assert "phantom" in messages         # dead subpackage entry
    assert "unbound_name" in messages    # __all__ names nothing
    assert lint_fixture("repro/okpkg/__init__.py") == []


def test_r7_pickle_loads():
    got = lint_fixture("r7_bad.py")
    assert ids(got) == ["R7"]
    assert lint_fixture("repro/parallel/tcp.py") == []  # sanctioned site
    assert lint_fixture("r7_suppressed.py") == []


def test_r8_broad_except():
    got = lint_fixture("repro/parallel/r8_bad.py")
    assert ids(got) == ["R8", "R8"]
    assert lint_fixture("repro/parallel/r8_ok.py") == []
    assert lint_fixture("repro/parallel/r8_suppressed.py") == []


# --------------------------------------------------------------------- #
# the ship gate
# --------------------------------------------------------------------- #
def test_src_repro_lints_clean():
    violations, nfiles = run_lint([SRC_REPRO])
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"repro package has lint violations:\n{rendered}"
    assert nfiles > 50  # the walk really covered the package


def test_cli_lint_exit_codes(capsys):
    from repro.cli import main

    assert main(["lint", SRC_REPRO]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out

    assert main(["lint", os.path.join(FIXTURES, "r1_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "R1" in out

    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("R1", "R4", "R8"):
        assert rid in out
