"""Block distributions: 1D / 2D / 3D splits reassemble exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.mesh import Mesh2D, Mesh3D
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import (
    block_ranges,
    distribute_dense_1d_rows,
    distribute_dense_2d,
    distribute_dense_3d,
    distribute_sparse_1d_cols,
    distribute_sparse_1d_rows,
    distribute_sparse_2d,
    distribute_sparse_3d,
    gather_dense_1d_rows,
    gather_dense_2d,
    gather_dense_3d,
    range_of,
)


class TestBlockRanges:
    def test_even_split(self):
        assert block_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_first_parts(self):
        assert block_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_items(self):
        ranges = block_ranges(2, 4)
        assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_length(self):
        assert block_ranges(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            block_ranges(5, 0)
        with pytest.raises(ValueError):
            block_ranges(-1, 2)

    def test_matches_array_split(self):
        for n in (5, 16, 33):
            for p in (1, 2, 3, 7):
                sizes = [hi - lo for lo, hi in block_ranges(n, p)]
                np_sizes = [len(c) for c in np.array_split(np.arange(n), p)]
                assert sizes == np_sizes

    @given(
        n=st.integers(0, 500),
        p=st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_ranges_partition_and_balance(self, n, p):
        ranges = block_ranges(n, p)
        assert len(ranges) == p
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        sizes = [hi - lo for lo, hi in ranges]
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0  # contiguous
        assert max(sizes) - min(sizes) <= 1  # near-equal

    @given(n=st.integers(1, 300), p=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_range_of_agrees(self, n, p):
        ranges = block_ranges(n, p)
        for i in range(p):
            assert range_of(n, p, i) == ranges[i]

    def test_range_of_bounds(self):
        with pytest.raises(IndexError):
            range_of(10, 4, 4)


def random_csr(n, m, seed, density=0.3):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n, m))
    d[rng.random((n, m)) > density] = 0.0
    return CSRMatrix.from_dense(d), d


class Test1D:
    def test_row_blocks_reassemble(self):
        a, d = random_csr(13, 9, 0)
        blocks = distribute_sparse_1d_rows(a, 4)
        stacked = np.concatenate(
            [blocks[i].to_dense() for i in range(4)], axis=0
        )
        np.testing.assert_array_equal(stacked, d)

    def test_col_blocks_reassemble(self):
        a, d = random_csr(9, 13, 1)
        blocks = distribute_sparse_1d_cols(a, 4)
        stacked = np.concatenate(
            [blocks[j].to_dense() for j in range(4)], axis=1
        )
        np.testing.assert_array_equal(stacked, d)

    def test_dense_rows_roundtrip(self):
        h = np.random.default_rng(2).standard_normal((11, 5))
        blocks = distribute_dense_1d_rows(h, 3)
        np.testing.assert_array_equal(gather_dense_1d_rows(blocks, 3), h)

    def test_nnz_conserved(self):
        a, _ = random_csr(20, 20, 3)
        blocks = distribute_sparse_1d_rows(a, 6)
        assert sum(b.nnz for b in blocks.values()) == a.nnz


class Test2D:
    def test_sparse_blocks_reassemble(self):
        a, d = random_csr(10, 10, 4)
        mesh = Mesh2D.rectangular(2, 3)
        blocks = distribute_sparse_2d(a, mesh)
        rows = []
        for i in range(2):
            rows.append(
                np.concatenate(
                    [blocks[mesh.rank_of(i, j)].to_dense() for j in range(3)],
                    axis=1,
                )
            )
        np.testing.assert_array_equal(np.concatenate(rows, axis=0), d)

    def test_dense_roundtrip(self):
        h = np.random.default_rng(5).standard_normal((9, 7))
        mesh = Mesh2D.square(4)
        blocks = distribute_dense_2d(h, mesh)
        np.testing.assert_array_equal(gather_dense_2d(blocks, mesh), h)

    def test_block_shapes_match_paper(self):
        # n x m matrix on Pr x Pc grid: ~n/Pr x m/Pc per process.
        a, _ = random_csr(12, 12, 6)
        mesh = Mesh2D.square(9)
        blocks = distribute_sparse_2d(a, mesh)
        for rank, b in blocks.items():
            assert b.nrows in (4,)
            assert b.ncols in (4,)

    def test_nnz_conserved(self):
        a, _ = random_csr(15, 15, 7)
        mesh = Mesh2D.square(9)
        blocks = distribute_sparse_2d(a, mesh)
        assert sum(b.nnz for b in blocks.values()) == a.nnz


class Test3D:
    def test_sparse_block_shapes(self):
        """Cubic mesh side p: A blocks are n/p x n/p^2 (Section IV-D)."""
        a, _ = random_csr(8, 8, 8, density=0.6)
        mesh = Mesh3D.cubic(8)
        blocks = distribute_sparse_3d(a, mesh)
        for key, b in blocks.items():
            assert b.nrows == 4   # n/p = 8/2
            assert b.ncols == 2   # n/p^2 = 8/4

    def test_dense_block_shapes(self):
        """H blocks are n/p^2 x f/p."""
        h = np.zeros((8, 6))
        mesh = Mesh3D.cubic(8)
        blocks = distribute_dense_3d(h, mesh)
        for b in blocks.values():
            assert b.shape == (2, 3)

    def test_dense_roundtrip(self):
        h = np.random.default_rng(9).standard_normal((17, 10))
        mesh = Mesh3D.cubic(8)
        blocks = distribute_dense_3d(h, mesh)
        np.testing.assert_array_equal(gather_dense_3d(blocks, mesh), h)

    def test_sparse_nnz_conserved(self):
        a, _ = random_csr(27, 27, 10)
        mesh = Mesh3D.cubic(27)
        blocks = distribute_sparse_3d(a, mesh)
        assert sum(b.nnz for b in blocks.values()) == a.nnz

    def test_sparse_blocks_reassemble(self):
        a, d = random_csr(12, 12, 11, density=0.5)
        mesh = Mesh3D.cubic(8)
        blocks = distribute_sparse_3d(a, mesh)
        # Reassemble: rows by i, then columns by (layer k, subsplit j).
        from repro.sparse.distribute import block_ranges as br

        out = np.zeros((12, 12))
        row_ranges = br(12, 2)
        layer_ranges = br(12, 2)
        for i, (r0, r1) in enumerate(row_ranges):
            for k, (k0, k1) in enumerate(layer_ranges):
                subs = br(k1 - k0, 2)
                for j, (s0, s1) in enumerate(subs):
                    rank = mesh.rank_of(i, j, k)
                    out[r0:r1, k0 + s0 : k0 + s1] = blocks[rank].to_dense()
        np.testing.assert_array_equal(out, d)
