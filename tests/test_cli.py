"""Command-line interface smoke and behaviour tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        # argparse stores subparser choices on the last action.
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) >= {
            "table6", "figure2", "figure3", "crossover", "train", "explosion",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--algorithm", "4d"])


class TestCommands:
    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "232,965" in out          # Reddit's published vertex count
        assert "protein" in out

    def test_crossover(self, capsys):
        assert main(["crossover"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out and "crossover" in out.lower()

    def test_figure2_single_dataset(self, capsys):
        assert main(["figure2", "--dataset", "reddit"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out
        assert "amazon" not in out

    def test_figure3(self, capsys):
        assert main(["figure3", "--dataset", "amazon"]) == 0
        out = capsys.readouterr().out
        assert "dcomm" in out

    def test_train_synthetic(self, capsys):
        rc = main([
            "train", "--algorithm", "2d", "--gpus", "4",
            "--vertices", "96", "--features", "8", "--hidden", "8",
            "--epochs", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loss" in out
        assert "communication" in out

    def test_train_15d_replication(self, capsys):
        rc = main([
            "train", "--algorithm", "1.5d", "--gpus", "4",
            "--replication", "2", "--vertices", "80", "--features", "8",
            "--hidden", "8", "--epochs", "2",
        ])
        assert rc == 0

    def test_train_standin(self, capsys):
        rc = main([
            "train", "--algorithm", "1d", "--gpus", "2",
            "--dataset", "reddit", "--scale", "4096", "--epochs", "2",
            "--hidden", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reddit-standin" in out

    def test_explosion(self, capsys):
        rc = main(["explosion", "--scale", "2048", "--hops", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hop2" in out


class TestSimulateCommands:
    def test_simulate_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        assert {"simulate", "sweep"} <= set(sub.choices)

    def test_simulate_synthetic(self, capsys):
        rc = main([
            "simulate", "--algorithm", "1d", "--gpus", "64",
            "--vertices", "4096", "--degree", "8", "--features", "32",
            "--machine", "ethernet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted epoch" in out
        assert "bandwidth" in out and "dcomm" in out

    def test_simulate_published_dataset(self, capsys):
        rc = main([
            "simulate", "--algorithm", "2d", "--gpus", "1024",
            "--dataset", "reddit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reddit" in out and "uniform" in out

    def test_simulate_standin_is_exact_mode(self, capsys):
        rc = main([
            "simulate", "--algorithm", "1d", "--gpus", "8",
            "--dataset", "reddit", "--scale", "2048",
        ])
        assert rc == 0
        assert "exact" in capsys.readouterr().out

    def test_simulate_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "point.json"
        rc = main([
            "simulate", "--algorithm", "3d", "--gpus", "512",
            "--vertices", "8192", "--json", str(out_file),
        ])
        assert rc == 0
        import json

        doc = json.loads(out_file.read_text())
        assert doc["algorithm"] == "3d" and doc["p"] == 512
        assert doc["seconds"] > 0

    def test_sweep_smoke_with_json(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--dataset", "reddit", "--max-p", "64",
            "--machines", "summit,ethernet", "--json", str(out_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner" in out and "strong scaling" in out
        import json

        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro-sweep/1"
        assert doc["winners"]

    def test_sweep_explicit_p_grid(self, capsys):
        rc = main([
            "sweep", "--vertices", "2048", "--degree", "6",
            "--features", "16", "--classes", "4",
            "--p-grid", "4,16", "--machines", "summit",
        ])
        assert rc == 0
        assert "P up to 16" in capsys.readouterr().out

    def test_sweep_rejects_unreachable_max_p(self, capsys):
        rc = main(["sweep", "--vertices", "1024", "--max-p", "2"])
        assert rc == 2
        assert "--p-grid" in capsys.readouterr().err

    def test_sweep_rejects_malformed_p_grid(self, capsys):
        rc = main(["sweep", "--vertices", "1024", "--p-grid", "4,,16"])
        assert rc == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_sweep_rejects_unknown_machine(self, capsys):
        rc = main(["sweep", "--vertices", "1024", "--machines", "bogus"])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err

    def test_simulate_rejects_unknown_machine(self, capsys):
        rc = main(["simulate", "--vertices", "1024", "--machine", "bogus"])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err

    def test_simulate_rejects_infeasible_mesh(self, capsys):
        rc = main(["simulate", "--algorithm", "3d", "--gpus", "1024",
                   "--vertices", "4096"])
        assert rc == 2
        assert "mesh" in capsys.readouterr().err
