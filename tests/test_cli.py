"""Command-line interface smoke and behaviour tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        # argparse stores subparser choices on the last action.
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) >= {
            "table6", "figure2", "figure3", "crossover", "train", "explosion",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--algorithm", "4d"])


class TestCommands:
    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "232,965" in out          # Reddit's published vertex count
        assert "protein" in out

    def test_crossover(self, capsys):
        assert main(["crossover"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out and "crossover" in out.lower()

    def test_figure2_single_dataset(self, capsys):
        assert main(["figure2", "--dataset", "reddit"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out
        assert "amazon" not in out

    def test_figure3(self, capsys):
        assert main(["figure3", "--dataset", "amazon"]) == 0
        out = capsys.readouterr().out
        assert "dcomm" in out

    def test_train_synthetic(self, capsys):
        rc = main([
            "train", "--algorithm", "2d", "--gpus", "4",
            "--vertices", "96", "--features", "8", "--hidden", "8",
            "--epochs", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "loss" in out
        assert "communication" in out

    def test_train_15d_replication(self, capsys):
        rc = main([
            "train", "--algorithm", "1.5d", "--gpus", "4",
            "--replication", "2", "--vertices", "80", "--features", "8",
            "--hidden", "8", "--epochs", "2",
        ])
        assert rc == 0

    def test_train_standin(self, capsys):
        rc = main([
            "train", "--algorithm", "1d", "--gpus", "2",
            "--dataset", "reddit", "--scale", "4096", "--epochs", "2",
            "--hidden", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reddit-standin" in out

    def test_explosion(self, capsys):
        rc = main(["explosion", "--scale", "2048", "--hops", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hop2" in out
