"""Dataset registry (Table VI) and synthetic stand-ins."""

import numpy as np
import pytest

from repro.graph.datasets import (
    GNN_LAYERS,
    HIDDEN_WIDTH,
    PUBLISHED,
    layer_widths,
    make_standin,
    make_synthetic,
    published_spec,
)


class TestPublishedSpecs:
    def test_table6_values(self):
        """The registry must carry the exact Table VI numbers."""
        reddit = published_spec("reddit")
        assert reddit.vertices == 232_965
        assert reddit.edges == 114_848_857
        assert reddit.features == 602
        assert reddit.labels == 41

        amazon = published_spec("amazon")
        assert amazon.vertices == 9_430_088
        assert amazon.edges == 231_594_310
        assert amazon.features == 300
        assert amazon.labels == 24

        protein = published_spec("protein")
        assert protein.vertices == 8_745_542
        assert protein.edges == 1_058_120_062
        assert protein.features == 128
        assert protein.labels == 256

    def test_average_degrees(self):
        # The degrees the paper quotes: amazon ~24, protein degree such
        # that nnz/n ~ 121; reddit is very dense (~493).
        assert published_spec("amazon").avg_degree == pytest.approx(24.6, abs=0.5)
        assert published_spec("protein").avg_degree == pytest.approx(121.0, abs=1.0)
        assert published_spec("reddit").avg_degree == pytest.approx(493.0, abs=2.0)

    def test_case_insensitive_lookup(self):
        assert published_spec("Reddit") is PUBLISHED["reddit"]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            published_spec("citeseer")


class TestLayerWidths:
    def test_three_layer_architecture(self):
        """The paper's 3-layer GCN with a 16-wide hidden layer."""
        w = layer_widths(602, 41)
        assert w == (602, HIDDEN_WIDTH, HIDDEN_WIDTH, 41)
        assert len(w) == GNN_LAYERS + 1

    def test_single_layer(self):
        assert layer_widths(10, 3, layers=1) == (10, 3)

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            layer_widths(10, 3, layers=0)


class TestStandins:
    def test_standin_preserves_feature_and_label_widths(self):
        ds = make_standin("reddit", scale_divisor=2048, seed=0)
        assert ds.feature_width == 602
        assert ds.num_classes == 41
        assert ds.spec is PUBLISHED["reddit"]

    def test_standin_scales_vertices(self):
        ds = make_standin("amazon", scale_divisor=4096, seed=0)
        expected = PUBLISHED["amazon"].vertices // 4096
        assert ds.num_vertices == max(64, expected)

    def test_standin_degree_tracks_published(self):
        ds = make_standin("amazon", scale_divisor=1024, seed=0)
        target = PUBLISHED["amazon"].avg_degree
        # Normalised adjacency has +1 self loop per vertex.
        realised = ds.num_edges / ds.num_vertices - 1
        assert realised == pytest.approx(target, rel=0.35)

    def test_standin_deterministic(self):
        a = make_standin("protein", scale_divisor=4096, seed=1)
        b = make_standin("protein", scale_divisor=4096, seed=1)
        assert a.adjacency.allclose(b.adjacency)
        np.testing.assert_array_equal(a.features, b.features)

    def test_standin_whole_graph_training_mask(self):
        ds = make_standin("reddit", scale_divisor=4096)
        assert ds.train_mask.all()

    def test_standin_adjacency_is_normalized(self):
        ds = make_standin("amazon", scale_divisor=4096)
        # Symmetric with spectral radius <= 1.
        assert ds.adjacency.allclose(ds.adjacency.transpose())
        d = ds.adjacency.to_dense()
        assert np.abs(np.linalg.eigvalsh(d)).max() <= 1 + 1e-9


class TestSynthetic:
    def test_shapes(self):
        ds = make_synthetic(n=100, avg_degree=5, f=16, n_classes=7, seed=0)
        assert ds.features.shape == (100, 16)
        assert ds.labels.shape == (100,)
        assert ds.labels.max() < 7
        assert ds.num_vertices == 100

    def test_generators(self):
        a = make_synthetic(n=80, generator="rmat", seed=1)
        b = make_synthetic(n=80, generator="erdos_renyi", seed=1)
        assert a.num_vertices == b.num_vertices == 80
        with pytest.raises(ValueError, match="generator"):
            make_synthetic(n=10, generator="barabasi")

    def test_summary(self):
        ds = make_synthetic(n=64, avg_degree=4, f=8, n_classes=3)
        s = ds.summary()
        assert s["vertices"] == 64
        assert s["features"] == 8

    def test_layer_widths_helper(self):
        ds = make_synthetic(n=64, f=20, n_classes=5)
        assert ds.layer_widths(hidden=8, layers=2) == (20, 8, 5)
