"""R7 positive fixture: pickle.loads outside the framed TCP path."""
import pickle


def decode(buf):
    return pickle.loads(buf)
