"""R4 negative fixture: every recognised guard shape."""


def if_guard(x):
    rec = _spans.ACTIVE
    if rec is not None:
        rec.record("kernel", x)


def early_exit(x):
    rec = _spans.ACTIVE
    if rec is None:
        return
    rec.record("kernel", x)


def orelse_guard(x):
    rec = _spans.ACTIVE
    if rec is None:
        pass
    else:
        rec.record("kernel", x)


def boolop_guard(x):
    rec = _spans.ACTIVE
    return rec is not None and rec.clock()
