"""R1 suppressed fixture: disable with a reason."""
import numpy as np


def fuzz_helper():
    return np.random.default_rng()  # repro-lint: disable=R1 -- fuzz seed chosen by harness
