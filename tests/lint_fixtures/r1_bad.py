"""R1 positive fixture: unseeded randomness in non-test code."""
import numpy as np


def legacy_draw():
    return np.random.rand(4)


def os_entropy():
    return np.random.default_rng()
