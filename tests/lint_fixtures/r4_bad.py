"""R4 positive fixture: instrumentation without the is-None guard."""


def direct_chain(x):
    _spans.ACTIVE.record("kernel", x)


def unguarded_var(x):
    rec = _spans.ACTIVE
    rec.record("kernel", x)
