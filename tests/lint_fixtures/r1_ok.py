"""R1 negative fixture: seeded generators are fine."""
import numpy as np


def seeded_draw(seed: int):
    rng = np.random.default_rng(seed)
    return rng.normal(size=4)
