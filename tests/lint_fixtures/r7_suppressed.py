"""R7 suppressed fixture."""
import pickle


def load_checkpoint(buf):
    return pickle.loads(buf)  # repro-lint: disable=R7 -- operator-owned checkpoint file
