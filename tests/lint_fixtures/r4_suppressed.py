"""R4 suppressed fixture."""


def always_on(x):
    # repro-lint: disable=R4 -- enable() ran on the line above, never None here
    _spans.ACTIVE.record("kernel", x)
