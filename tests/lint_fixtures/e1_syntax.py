"""E1 fixture: an unparsable file reports, it does not raise."""


def broken(:
    pass
