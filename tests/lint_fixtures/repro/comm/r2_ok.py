"""R2 negative fixture: sorted/list iteration keeps a fixed order."""


def fold(items, table):
    acc = 0.0
    for x in sorted(set(items)):
        acc += x
    for k in sorted(table):
        acc += table[k]
    return acc
