"""R5 positive fixture: wall clock in ledger scope."""
import time


def stamp():
    return time.time()
