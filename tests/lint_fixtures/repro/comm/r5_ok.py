"""R5 negative fixture: monotonic clocks are the sanctioned ones."""
import time


def stamp():
    return time.monotonic(), time.perf_counter()
