"""R5 positive fixture: the from-import spelling."""
from time import time


def stamp():
    return time()
