"""R5 suppressed fixture."""
import time


def log_stamp():
    return time.time()  # repro-lint: disable=R5 -- log correlation only, never digested
