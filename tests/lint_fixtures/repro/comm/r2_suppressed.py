"""R2 suppressed fixture."""


def drain(pending):
    # repro-lint: disable=R2 -- order is observational, result is a sum
    for x in set(pending):
        yield x
