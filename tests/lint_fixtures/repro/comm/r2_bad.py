"""R2 positive fixture: salted iteration orders in comm scope."""


def fold(items, table):
    acc = 0.0
    for x in set(items):
        acc += x
    for k in table.keys():
        acc += table[k]
    return acc


def comprehended(items):
    return [x + 1 for x in {i * 2 for i in items}]
