"""Target module for the R6 fixtures."""

real_thing = 1
