"""R6 positive fixture: every way an export table can lie."""

_EXPORTS = {
    "real_thing": "repro.fakepkg.mod",
    "ghost_thing": "repro.fakepkg.mod",
    "orphan": "repro.fakepkg.nowhere",
}

_SUBPACKAGES = ("mod", "phantom")

__all__ = ["real_thing", "unbound_name"]
