"""R6 negative fixture: a truthful lazy-export table."""

_EXPORTS = {"real_thing": "repro.okpkg.mod"}

_SUBPACKAGES = ("mod",)

__all__ = ["real_thing"]
