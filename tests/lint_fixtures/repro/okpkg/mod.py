"""Target module for the R6 negative fixture."""

real_thing = 2
