"""R3 negative fixture: charge and data plane move together."""


class Algo:
    def exchange(self, coll, group, parts):
        charges = coll.allgather_charges(group, parts)
        blocks = coll.allgather_data(group, parts)
        return charges, blocks

    def routed(self, coll, routes):
        charges = coll.sendrecv_charges_sized(routes)
        payloads = coll.routed_sendrecv_data(routes)
        return charges, payloads
