"""R3 suppressed fixture."""


class Algo:
    def charge_only(self, coll, group, parts):
        return coll.allgather_charges(group, parts)  # repro-lint: disable=R3 -- data move lives in the caller
