"""R3 positive fixture: a charge with no data-plane counterpart."""


class Algo:
    def exchange(self, coll, group, parts):
        charges = coll.allgather_charges(group, parts)
        return charges
