"""R8 suppressed fixture."""


def top_level_barrier(op):
    try:
        return op()
    except Exception:  # repro-lint: disable=R8 -- boundary: every failure becomes an err reply
        return None
