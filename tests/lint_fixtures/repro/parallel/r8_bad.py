"""R8 positive fixture: broad excepts in parallel scope."""


def swallow(op):
    try:
        return op()
    except Exception:
        return None


def bare(op):
    try:
        return op()
    except:  # noqa: E722
        return None
