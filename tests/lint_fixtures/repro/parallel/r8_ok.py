"""R8 negative fixture: named taxonomy catches."""


def retry(op):
    try:
        return op()
    except (ValueError, TimeoutError):
        return None
