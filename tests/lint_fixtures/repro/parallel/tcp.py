"""R7 negative fixture: the one sanctioned pickle.loads site."""
import pickle


class TcpChannel:
    def _read_msg(self, src):
        frame = self._frames[src]
        return pickle.loads(frame)
