"""R0 fixture: a reasonless suppression is itself a violation, but it
still suppresses its target rule (one finding per problem)."""
import pickle


def load(buf):
    return pickle.loads(buf)  # repro-lint: disable=R7
