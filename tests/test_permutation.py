"""Random vertex permutation: consistency and load-balance effect."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import rmat, star_graph
from repro.graph.normalize import gcn_normalize
from repro.graph.permutation import (
    apply_random_permutation,
    block_nnz_imbalance,
    identity_permutation,
    invert_permutation,
    random_permutation,
)
from repro.sparse.distribute import distribute_sparse_1d_rows


class TestPermutations:
    def test_random_permutation_is_permutation(self):
        p = random_permutation(50, seed=0)
        assert sorted(p) == list(range(50))

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_permutation(20, seed=5), random_permutation(20, seed=5)
        )

    @given(n=st.integers(1, 200), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_inverse_property(self, n, seed):
        p = random_permutation(n, seed)
        inv = invert_permutation(p)
        np.testing.assert_array_equal(p[inv], np.arange(n))
        np.testing.assert_array_equal(inv[p], np.arange(n))

    def test_identity(self):
        np.testing.assert_array_equal(identity_permutation(4), [0, 1, 2, 3])


class TestDatasetPermutation:
    def test_features_follow_vertices(self):
        a = gcn_normalize(rmat(scale=6, edge_factor=4, seed=0))
        n = a.nrows
        feats = np.arange(n, dtype=np.float64)[:, None] * np.ones((1, 3))
        labels = np.arange(n) % 5
        a2, f2, y2, perm = apply_random_permutation(a, feats, labels, seed=1)
        # New vertex perm[i] must carry old vertex i's feature row.
        for i in (0, n // 2, n - 1):
            np.testing.assert_array_equal(f2[perm[i]], feats[i])
            assert y2[perm[i]] == labels[i]

    def test_adjacency_conjugated(self):
        a = gcn_normalize(rmat(scale=5, edge_factor=3, seed=2))
        n = a.nrows
        feats = np.zeros((n, 2))
        labels = np.zeros(n, dtype=np.int64)
        a2, _, _, perm = apply_random_permutation(a, feats, labels, seed=3)
        d, d2 = a.to_dense(), a2.to_dense()
        for i in range(0, n, 7):
            for j in range(0, n, 5):
                assert d2[perm[i], perm[j]] == pytest.approx(d[i, j])

    def test_shape_mismatch_rejected(self):
        a = gcn_normalize(rmat(scale=4, edge_factor=3, seed=0))
        with pytest.raises(ValueError):
            apply_random_permutation(
                a, np.zeros((3, 2)), np.zeros(a.nrows), seed=0
            )


class TestLoadBalance:
    def test_permutation_fixes_star_imbalance(self):
        """A sorted star graph concentrates nnz in the first block; the
        random permutation spreads it (Section I's load-balance claim).

        The hub's adjacencies land in one block row either way (1D cannot
        split a single row), but contiguous hub+early-leaves pile-up is
        broken up: imbalance must drop.
        """
        # Adversarial graph: many stars with hubs packed at the front.
        import numpy as np
        from repro.sparse.csr import CSRMatrix

        n, hubs = 400, 8
        rng = np.random.default_rng(0)
        rows, cols = [], []
        for h in range(hubs):
            leaves = np.arange(hubs + h * 40, hubs + (h + 1) * 40)
            rows += [h] * len(leaves)
            cols += list(leaves)
        a = CSRMatrix.from_coo(
            np.array(rows + cols), np.array(cols + rows),
            np.ones(2 * len(rows)), (n, n),
        )
        before = block_nnz_imbalance(distribute_sparse_1d_rows(a, 8))
        perm = random_permutation(n, seed=4)
        after = block_nnz_imbalance(
            distribute_sparse_1d_rows(a.permute(perm), 8)
        )
        assert after < before

    def test_imbalance_of_uniform_is_one(self):
        from repro.graph.generators import ring_graph

        blocks = distribute_sparse_1d_rows(ring_graph(64), 8)
        assert block_nnz_imbalance(blocks) == pytest.approx(1.0)

    def test_empty_blocks_imbalance(self):
        from repro.sparse.csr import CSRMatrix

        blocks = {0: CSRMatrix.zeros((2, 2)), 1: CSRMatrix.zeros((2, 2))}
        assert block_nnz_imbalance(blocks) == 1.0
