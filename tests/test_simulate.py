"""The scaling simulator: exactness against executed ledgers + sweeps.

The subsystem's contract (ISSUE 2 acceptance): for every registered
algorithm, the simulator-predicted epoch communication volume matches the
executed virtual-run ledger **exactly** at P in {4, 8, 16} (each
algorithm tested at the rank counts its mesh realises), and a full
(4 algorithms x 3 machines x P up to 16384) sweep completes in seconds
with valid JSON.
"""

import json
import time

import numpy as np
import pytest

from repro.comm.tracker import Category
from repro.dist import ALGORITHMS, make_algorithm
from repro.dist.registry import make_runtime_for
from repro.graph import make_synthetic
from repro.simulate import (
    DEFAULT_P_GRID,
    GraphModel,
    evaluate_schedule,
    get_machine,
    list_machines,
    predict_epoch,
    sweep,
)
from repro.simulate.engine import default_algo_kwargs, supports_p
from repro.sparse.csr import CSRMatrix
from repro.sparse.distribute import block_ranges, distribute_sparse_2d


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic(n=70, avg_degree=5, f=12, n_classes=3, seed=1)


@pytest.fixture(scope="module")
def graph(dataset):
    return GraphModel.from_dataset(dataset)


@pytest.fixture(scope="module")
def directed():
    rng = np.random.default_rng(0)
    n = 60
    rows = rng.integers(0, n, 400)
    cols = rng.integers(0, n, 400)
    a_t = CSRMatrix.from_coo(rows, cols, rng.random(400), (n, n))
    feats = rng.random((n, 10))
    labels = rng.integers(0, 3, n).astype(np.int64)
    return a_t, feats, labels


def _executed_epoch(name, p, dataset, **kwargs):
    algo = make_algorithm(name, p, dataset, hidden=8, seed=0, **kwargs)
    algo.setup(dataset.features, dataset.labels)
    return algo.train_epoch(0)


# The acceptance grid: every registered algorithm at each P in {4, 8, 16}
# its process mesh realises.
ACCEPTANCE = [
    (name, p)
    for name in sorted(ALGORITHMS)
    for p in (4, 8, 16)
    if supports_p(name, p)
]


class TestLedgerExactness:
    @pytest.mark.parametrize("name,p", ACCEPTANCE)
    def test_volume_matches_executed_ledger(self, name, p, dataset, graph):
        stats = _executed_epoch(name, p, dataset)
        point = predict_epoch(name, graph, p, hidden=8)
        for cat in Category.COMM:
            assert point.bytes_by_category[cat] == \
                stats.bytes_by_category[cat], (name, p, cat)

    @pytest.mark.parametrize("name,p", ACCEPTANCE)
    def test_modeled_seconds_match(self, name, p, dataset, graph):
        stats = _executed_epoch(name, p, dataset)
        point = predict_epoch(name, graph, p, hidden=8)
        assert point.seconds == pytest.approx(
            stats.modeled_seconds, rel=1e-9
        )
        for cat in Category.ALL:
            assert point.seconds_by_category[cat] == pytest.approx(
                stats.seconds_by_category[cat], rel=1e-9, abs=1e-18
            )

    @pytest.mark.parametrize(
        "variant", ["symmetric", "outer", "outer_sparse", "transpose"]
    )
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_1d_variants_exact(self, variant, p, dataset, graph):
        stats = _executed_epoch("1d", p, dataset, variant=variant)
        point = predict_epoch("1d", graph, p, hidden=8, variant=variant)
        for cat in Category.COMM:
            assert point.bytes_by_category[cat] == \
                stats.bytes_by_category[cat], (variant, cat)
        assert point.seconds == pytest.approx(
            stats.modeled_seconds, rel=1e-9
        )

    @pytest.mark.parametrize("p,c", [(4, 2), (8, 4), (16, 2), (16, 4)])
    def test_15d_replication_exact(self, p, c, dataset, graph):
        stats = _executed_epoch("1.5d", p, dataset, replication=c)
        point = predict_epoch("1.5d", graph, p, hidden=8, replication=c)
        for cat in Category.COMM:
            assert point.bytes_by_category[cat] == \
                stats.bytes_by_category[cat]
        assert point.seconds == pytest.approx(
            stats.modeled_seconds, rel=1e-9
        )

    @pytest.mark.parametrize("grid", [(2, 4), (4, 2)])
    def test_2d_rectangular_exact(self, grid, dataset, graph):
        p = grid[0] * grid[1]
        stats = _executed_epoch("2d", p, dataset, grid=grid)
        point = predict_epoch("2d", graph, p, hidden=8, grid=grid)
        for cat in Category.COMM:
            assert point.bytes_by_category[cat] == \
                stats.bytes_by_category[cat]

    def test_2d_summa_blocking_exact(self, dataset, graph):
        stats = _executed_epoch("2d", 4, dataset, summa_block=13)
        point = predict_epoch("2d", graph, 4, hidden=8, summa_block=13)
        for cat in Category.COMM:
            assert point.bytes_by_category[cat] == \
                stats.bytes_by_category[cat]

    @pytest.mark.parametrize(
        "name,p", [("1d", 4), ("1d", 8), ("2d", 4), ("2d", 16), ("3d", 8)]
    )
    def test_directed_operand_exact(self, name, p, directed):
        a_t, feats, labels = directed
        widths = (10, 8, 8, 3)
        rt = make_runtime_for(name, p)
        algo = ALGORITHMS[name](rt, a_t, widths, seed=0)
        algo.setup(feats, labels)
        stats = algo.train_epoch(0)
        gm = GraphModel.from_csr(a_t, name="directed")
        assert not gm.symmetric
        schedule = ALGORITHMS[name].emit_comm_schedule(gm, widths, p)
        result = evaluate_schedule(schedule, get_machine(None))
        for cat in Category.COMM:
            assert result.bytes_by_category[cat] == \
                stats.bytes_by_category[cat], (name, cat)

    def test_prediction_is_steady_state(self, dataset, graph):
        """Every epoch charges identically; epoch 1 matches the schedule."""
        algo = make_algorithm("2d", 4, dataset, hidden=8, seed=0)
        algo.setup(dataset.features, dataset.labels)
        algo.train_epoch(0)
        second = algo.train_epoch(1)
        point = predict_epoch("2d", graph, 4, hidden=8)
        for cat in Category.COMM:
            assert point.bytes_by_category[cat] == \
                second.bytes_by_category[cat]


class TestGraphModel:
    def test_cell_counts_partition_nnz(self, dataset, graph):
        bounds = np.array(
            [0] + [hi for _, hi in block_ranges(graph.n, 3)]
        )
        cells = graph.cell_nnz(4, bounds)
        assert cells.shape == (4, 3)
        assert cells.sum() == graph.nnz

    def test_cells_match_distributed_blocks(self, dataset, graph):
        mesh = make_runtime_for("2d", 4).mesh2d
        blocks = distribute_sparse_2d(dataset.adjacency, mesh)
        bounds = np.array(
            [0] + [hi for _, hi in block_ranges(graph.n, 2)]
        )
        cells = graph.cell_nnz(2, bounds)
        for i in range(2):
            for j in range(2):
                assert cells[i, j] == blocks[mesh.rank_of(i, j)].nnz

    def test_uniform_mode_partitions_nnz(self):
        gm = GraphModel.uniform(1000, 12345)
        assert not gm.exact
        bounds = np.array([0, 300, 1000])
        cells = gm.cell_nnz(5, bounds)
        assert cells.sum() == pytest.approx(12345)

    def test_coerce_accepts_published_name(self):
        gm = GraphModel.coerce("reddit")
        assert gm.n == 232965
        assert not gm.exact
        assert gm.features and gm.n_classes

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError, match="GraphModel"):
            GraphModel.coerce(3.14)

    def test_nonzero_rows_oracle_exact(self, dataset, graph):
        dense = dataset.adjacency.to_dense()
        bounds = block_ranges(graph.n, 4)
        expect = [
            int(np.count_nonzero(dense[:, lo:hi].any(axis=1)))
            for lo, hi in bounds
        ]
        got = graph.col_block_nonzero_rows(4)
        assert list(got) == expect


class TestMachines:
    def test_presets_registered(self):
        assert set(list_machines()) == {"summit", "cori-gpu", "ethernet"}
        for name in list_machines():
            assert get_machine(name).name == name

    def test_get_machine_accepts_profile(self):
        prof = get_machine("ethernet")
        assert get_machine(prof) is prof

    def test_default_is_summit(self):
        assert get_machine(None).name == "summit"

    def test_congestion_grows_with_span(self):
        eth = get_machine("ethernet")
        assert eth.congestion_per_doubling > 0
        b64 = eth.beta_effective(64)
        b4096 = eth.beta_effective(4096)
        assert b4096 > b64 > eth.beta_for_span(64)

    def test_summit_has_no_congestion(self):
        summit = get_machine("summit")
        for span in (2, 6, 64, 16384):
            assert summit.beta_effective(span) == summit.beta_for_span(span)

    def test_machines_rank_a_bandwidth_bound_epoch(self):
        """Slower networks predict slower epochs, same schedule."""
        gm = GraphModel.uniform(1 << 16, 1 << 20, features=64, n_classes=8)
        secs = {
            m: predict_epoch("1d", gm, 256, machine=m).seconds
            for m in ("summit", "cori-gpu", "ethernet")
        }
        assert secs["summit"] < secs["cori-gpu"] < secs["ethernet"]


class TestSweep:
    def test_full_grid_under_ten_seconds_with_valid_json(self):
        """The ISSUE 2 acceptance sweep: 4 algorithms x 3 machines x P up
        to 16384, in seconds, emitting valid JSON."""
        gm = GraphModel.from_published("reddit")
        t0 = time.perf_counter()
        result = sweep(gm)
        elapsed = time.perf_counter() - t0
        assert elapsed < 10.0
        assert max(result.ps) >= 16384
        assert set(result.machines) == {"summit", "cori-gpu", "ethernet"}
        assert set(result.algorithms) == set(ALGORITHMS)
        doc = json.loads(result.to_json())
        assert doc["schema"] == "repro-sweep/1"
        assert len(doc["points"]) == len(result.points)
        assert doc["winners"]
        # Every swept (machine, P) has a winner for the one graph.
        winners = result.winners()
        for machine in result.machines:
            for p in result.ps:
                assert ("reddit", machine, p) in winners

    def test_invalid_p_skipped_not_snapped(self):
        gm = GraphModel.uniform(4096, 65536, features=32, n_classes=4)
        result = sweep(gm, ps=(8, 9), machines=("summit",))
        by_algo = {}
        for pt in result.points:
            by_algo.setdefault(pt.algorithm, set()).add(pt.p)
        assert by_algo["1d"] == {8, 9}
        assert by_algo["2d"] == {9}       # 8 is not a square
        assert by_algo["3d"] == {8}       # 9 is not a cube

    def test_default_p_grid_realises_all_meshes(self):
        assert any(supports_p("3d", p) for p in DEFAULT_P_GRID)
        assert all(supports_p("2d", p) for p in DEFAULT_P_GRID)

    def test_15d_default_replication_divides_p(self):
        for p in DEFAULT_P_GRID:
            c = default_algo_kwargs("1.5d", p)["replication"]
            assert p % c == 0
            assert 1 <= c <= max(1, int(np.sqrt(p / 2)) + 1)

    def test_series_are_monotone_in_p_for_volume(self):
        """Per-epoch per-rank work shrinks with P; total seconds fall
        until latency dominates -- check the curve is returned sorted."""
        gm = GraphModel.from_published("reddit")
        result = sweep(gm, algorithms=("2d",), machines=("summit",),
                       ps=(16, 64, 256))
        series = result.series("reddit", "summit", "2d")
        assert [p for p, _ in series] == [16, 64, 256]

    def test_predict_rejects_invalid_mesh(self, graph):
        with pytest.raises(ValueError, match="mesh"):
            predict_epoch("2d", graph, 8, hidden=8)

    def test_predict_requires_widths_for_bare_shapes(self):
        gm = GraphModel.uniform(1024, 8192)
        with pytest.raises(ValueError, match="widths"):
            predict_epoch("1d", gm, 4)
        point = predict_epoch("1d", gm, 4, widths=(16, 8, 4))
        assert point.seconds > 0


class TestScalingAnalysis:
    def test_crossover_and_table(self):
        from repro.analysis.scaling import (
            crossover_points,
            format_crossovers,
            format_scaling_table,
        )

        gm = GraphModel.from_published("reddit")
        result = sweep(gm, machines=("summit",), ps=(4, 16, 64, 256))
        table = format_scaling_table(result, "reddit", "summit")
        assert "winner" in table and "256" in table
        crossings = crossover_points(result)
        text = format_crossovers(result)
        if crossings:
            assert crossings[0].winner in ALGORITHMS
            assert "->" in text
        else:
            assert "no winner crossovers" in text


class TestSweepGridKwargs:
    def test_sweep_honours_explicit_rectangular_grid(self):
        """A per-algorithm grid kwarg lifts the square-P constraint the
        same way predict_epoch's does."""
        gm = GraphModel.uniform(4096, 65536, features=32, n_classes=4)
        result = sweep(
            gm, algorithms=("2d",), ps=(8, 9), machines=("summit",),
            algo_kwargs={"2d": {"grid": (2, 4)}},
        )
        assert [pt.p for pt in result.points] == [8]  # grid tiles 8, not 9

    def test_sweep_accepts_bare_csr_matrix(self, dataset):
        result = sweep(dataset.adjacency, algorithms=("1d",), ps=(4,),
                       machines=("summit",), widths=(12, 8, 3))
        assert len(result.points) == 1

    def test_sweep_skips_p_where_fixed_replication_cannot_tile(self):
        gm = GraphModel.uniform(4096, 65536, features=32, n_classes=4)
        result = sweep(
            gm, algorithms=("1.5d",), ps=(4, 16), machines=("summit",),
            algo_kwargs={"1.5d": {"replication": 8}},
        )
        assert [pt.p for pt in result.points] == [16]
