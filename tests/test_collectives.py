"""Simulated collectives: data movement semantics + cost charging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.comm import VirtualRuntime
from repro.comm.collectives import payload_nbytes
from repro.comm.tracker import Category
from repro.config import ZERO_COST
from repro.sparse.csr import CSRMatrix


def make_coll(p=4):
    rt = VirtualRuntime.make_1d(p)
    return rt, rt.coll


class TestPayloadSizing:
    def test_dense_payload(self):
        arr = np.zeros((10, 4))
        assert payload_nbytes(arr) == arr.nbytes

    def test_sparse_payload(self):
        m = CSRMatrix.eye(8)
        assert payload_nbytes(m) == m.nbytes_on_wire

    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_nbytes("not a payload")


class TestBroadcast:
    def test_everyone_receives_value(self):
        rt, coll = make_coll()
        value = np.arange(12.0).reshape(3, 4).copy()
        out = coll.broadcast([0, 1, 2, 3], root=1, value=value)
        for r in range(4):
            np.testing.assert_array_equal(out[r], value)
            # Copy-on-write: one shared read-only buffer, not P copies.
            assert out[r].base is value
            assert not out[r].flags.writeable

    def test_materialized_copies_are_independent(self):
        rt, coll = make_coll()
        value = np.ones((2, 2))
        out = coll.broadcast([0, 1], root=0, value=value, materialize=True)
        assert out[0] is value          # root keeps its buffer
        out[1][0, 0] = 99.0             # private writable copy
        assert value[0, 0] == 1.0

    def test_root_must_be_member(self):
        rt, coll = make_coll()
        with pytest.raises(ValueError, match="root"):
            coll.broadcast([0, 1], root=3, value=np.ones(2))

    def test_bytes_charged_per_rank(self):
        rt, coll = make_coll()
        value = np.ones((8, 8))
        coll.broadcast([0, 1, 2], root=0, value=value)
        for r in range(3):
            assert rt.tracker.per_rank[r][Category.DCOMM].bytes == value.nbytes
        assert rt.tracker.per_rank[3][Category.DCOMM].bytes == 0

    def test_sparse_broadcast_charges_scomm(self):
        rt, coll = make_coll()
        block = CSRMatrix.eye(16)
        coll.broadcast([0, 1], root=0, value=block, category=Category.SCOMM)
        assert rt.tracker.total_bytes(Category.SCOMM) > 0
        assert rt.tracker.total_bytes(Category.DCOMM) == 0


class TestAllgather:
    def test_all_ranks_get_all_values(self):
        rt, coll = make_coll()
        values = {r: np.full((2,), float(r)) for r in range(4)}
        out = coll.allgather(range(4), values)
        for r in range(4):
            gathered = np.concatenate(out[r])
            np.testing.assert_array_equal(
                gathered, [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
            )

    def test_missing_contribution_rejected(self):
        rt, coll = make_coll()
        with pytest.raises(KeyError, match="missing contributions"):
            coll.allgather([0, 1], {0: np.ones(2)})


class TestReduceScatter:
    def test_sum_and_shard(self):
        rt, coll = make_coll()
        # Each rank holds a full 8x2 partial; result is the sum, sharded
        # in 2-row blocks.
        values = {r: np.full((8, 2), float(r + 1)) for r in range(4)}
        out = coll.reduce_scatter(range(4), values, axis=0)
        expected_total = 1.0 + 2.0 + 3.0 + 4.0
        for r in range(4):
            assert out[r].shape == (2, 2)
            np.testing.assert_allclose(out[r], expected_total)

    def test_uneven_shards_follow_array_split(self):
        rt, coll = make_coll(3)
        values = {r: np.ones((7, 1)) for r in range(3)}
        out = coll.reduce_scatter(range(3), values, axis=0)
        assert [out[r].shape[0] for r in range(3)] == [3, 2, 2]

    def test_shape_mismatch_rejected(self):
        rt, coll = make_coll(2)
        with pytest.raises(ValueError, match="shape mismatch"):
            coll.reduce_scatter(
                [0, 1], {0: np.ones((2, 2)), 1: np.ones((3, 2))}
            )

    @given(
        arrs=st.integers(min_value=2, max_value=6).flatmap(
            lambda p: st.lists(
                hnp.arrays(
                    np.float64,
                    (12, 3),
                    elements=st.floats(-100, 100, allow_nan=False),
                ),
                min_size=p, max_size=p,
            )
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_reduce_scatter_preserves_sum(self, arrs):
        p = len(arrs)
        rt = VirtualRuntime.make_1d(p, ZERO_COST)
        values = {r: arrs[r] for r in range(p)}
        out = rt.coll.reduce_scatter(range(p), values, axis=0)
        reassembled = np.concatenate([out[r] for r in range(p)], axis=0)
        np.testing.assert_allclose(
            reassembled, np.sum(arrs, axis=0), rtol=1e-10, atol=1e-10
        )


class TestAllreduceAndReduce:
    def test_allreduce_sum(self):
        rt, coll = make_coll()
        values = {r: np.full((3, 3), float(r)) for r in range(4)}
        out = coll.allreduce(range(4), values)
        for r in range(4):
            np.testing.assert_allclose(out[r], 6.0)

    def test_allreduce_custom_op(self):
        rt, coll = make_coll(2)
        values = {0: np.array([1.0, 5.0]), 1: np.array([3.0, 2.0])}
        out = coll.allreduce([0, 1], values, op=np.maximum)
        np.testing.assert_array_equal(out[0], [3.0, 5.0])

    def test_reduce_to_root(self):
        rt, coll = make_coll()
        values = {r: np.ones(4) for r in range(4)}
        acc = coll.reduce(range(4), values, root=2)
        np.testing.assert_allclose(acc, 4.0)


class TestScatterGatherAlltoall:
    def test_scatter(self):
        rt, coll = make_coll(3)
        shards = [np.full(2, float(i)) for i in range(3)]
        out = coll.scatter([0, 1, 2], shards, root=0)
        for r in range(3):
            np.testing.assert_array_equal(out[r], [float(r)] * 2)

    def test_scatter_shard_count_mismatch(self):
        rt, coll = make_coll(3)
        with pytest.raises(ValueError, match="shards"):
            coll.scatter([0, 1, 2], [np.ones(1)], root=0)

    def test_gather(self):
        rt, coll = make_coll(3)
        values = {r: np.full(1, float(r)) for r in range(3)}
        out = coll.gather([0, 1, 2], values, root=1)
        np.testing.assert_array_equal(np.concatenate(out), [0.0, 1.0, 2.0])

    def test_alltoall_transposes_buckets(self):
        rt, coll = make_coll(3)
        buckets = {
            r: [np.array([float(10 * r + j)]) for j in range(3)]
            for r in range(3)
        }
        out = coll.alltoall(range(3), buckets)
        # Receiver j gets [bucket[0][j], bucket[1][j], bucket[2][j]].
        for j in range(3):
            got = np.concatenate(out[j])
            np.testing.assert_array_equal(got, [j, 10 + j, 20 + j])

    def test_alltoall_wrong_bucket_count(self):
        rt, coll = make_coll(2)
        with pytest.raises(ValueError, match="buckets"):
            coll.alltoall([0, 1], {0: [np.ones(1)], 1: [np.ones(1)] * 2})


class TestCopyOnWrite:
    """Default collectives share read-only buffers; mutation raises."""

    def test_allreduce_returns_one_shared_readonly_array(self):
        # Regression: the historical {r: acc.copy()} handed every rank a
        # private buffer; copy-on-write shares one read-only array.
        rt, coll = make_coll()
        values = {r: np.full((3, 3), float(r)) for r in range(4)}
        out = coll.allreduce(range(4), values)
        assert all(out[r] is out[0] for r in range(4))
        with pytest.raises(ValueError):
            out[2][0, 0] = 123.0  # mutating a peer's view must raise
        np.testing.assert_allclose(out[0], 6.0)  # nothing corrupted

    def test_broadcast_payload_mutation_raises(self):
        rt, coll = make_coll()
        out = coll.broadcast([0, 1, 2], root=0, value=np.ones((2, 2)))
        with pytest.raises(ValueError):
            out[1] += 1.0

    def test_allgather_payload_mutation_raises(self):
        rt, coll = make_coll(2)
        out = coll.allgather([0, 1], {0: np.ones(3), 1: np.zeros(3)})
        with pytest.raises(ValueError):
            out[0][1][0] = 5.0

    def test_reduce_scatter_shards_are_readonly_contiguous_views(self):
        rt, coll = make_coll()
        values = {r: np.ones((8, 2)) for r in range(4)}
        out = coll.reduce_scatter(range(4), values, axis=0)
        base = out[0].base
        for r in range(4):
            assert out[r].base is base  # shards view one reduced buffer
            assert out[r].flags.c_contiguous
            with pytest.raises(ValueError):
                out[r][0, 0] = 0.0

    def test_materialize_restores_private_writable_buffers(self):
        rt, coll = make_coll()
        values = {r: np.full((2, 2), float(r)) for r in range(4)}
        out = coll.allreduce(range(4), values, materialize=True)
        assert out[0] is not out[1]
        out[0][0, 0] = -1.0  # writable, private
        np.testing.assert_allclose(out[1], 6.0)

    def test_sparse_blocks_are_shared_not_copied(self):
        # CSR blocks are structurally immutable; sharing them preserves
        # the cached scipy wrapper across epochs (the SpMM fast path).
        rt, coll = make_coll(2)
        block = CSRMatrix.eye(8)
        out = coll.broadcast([0, 1], root=0, value=block)
        assert out[0] is block and out[1] is block

    def test_cow_and_materialized_charges_identical(self):
        rt1, coll1 = make_coll()
        rt2, coll2 = make_coll()
        values = {r: np.full((4, 4), float(r)) for r in range(4)}
        coll1.allreduce(range(4), values)
        coll2.allreduce(range(4), values, materialize=True)
        for r in range(4):
            a = rt1.tracker.per_rank[r][Category.DCOMM]
            b = rt2.tracker.per_rank[r][Category.DCOMM]
            assert (a.seconds, a.bytes, a.messages) == (
                b.seconds, b.bytes, b.messages)

    def test_custom_non_ufunc_op_still_works(self):
        rt, coll = make_coll(2)
        values = {0: np.array([1.0, 5.0]), 1: np.array([3.0, 2.0])}
        out = coll.allreduce(
            [0, 1], values, op=lambda a, b: np.minimum(a, b))
        np.testing.assert_array_equal(out[0], [1.0, 2.0])


class TestSendrecvAndBarrier:
    def test_sendrecv_returns_readonly_view(self):
        rt, coll = make_coll(2)
        v = np.ones(4)
        got = coll.sendrecv(0, 1, v)
        np.testing.assert_array_equal(got, v)
        assert got is not v
        assert not got.flags.writeable
        got_own = coll.sendrecv(0, 1, v, materialize=True)
        assert got_own.base is None and got_own.flags.writeable

    def test_sendrecv_same_rank_noop(self):
        rt, coll = make_coll(2)
        v = np.ones(4)
        assert coll.sendrecv(0, 0, v) is v
        assert rt.tracker.total_bytes() == 0

    def test_sendrecv_charges_receiver_only(self):
        rt, coll = make_coll(2)
        coll.sendrecv(0, 1, np.ones(4))
        assert rt.tracker.per_rank[0][Category.DCOMM].bytes == 0
        assert rt.tracker.per_rank[1][Category.DCOMM].bytes == 32

    def test_barrier_charges_latency_only(self):
        rt, coll = make_coll(4)
        coll.barrier(range(4))
        assert rt.tracker.total_bytes() == 0
        assert rt.tracker.wall_seconds() > 0

    def test_barrier_single_rank_free(self):
        rt, coll = make_coll(2)
        coll.barrier([0])
        assert rt.tracker.wall_seconds() == 0.0
