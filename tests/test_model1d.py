"""Analytic 1D epoch model vs measured execution, and 1D-vs-2D stories."""

import pytest

from repro.analysis.model1d import Model1DEpoch
from repro.analysis.model2d import Model2DEpoch
from repro.comm import VirtualRuntime
from repro.comm.tracker import Category
from repro.config import COMMODITY, SUMMIT
from repro.dist.algo_1d import DistGCN1D


class TestModelVsExecution:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_categories_match_measured(self, uniform_dataset, p):
        ds = uniform_dataset
        widths = ds.layer_widths(hidden=16)
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN1D(rt, ds.adjacency, widths, seed=0, variant="symmetric")
        algo.setup(ds.features, ds.labels)
        measured = algo.train_epoch(0)
        modeled = Model1DEpoch(
            ds.num_vertices, ds.adjacency.nnz, widths, p, dtype_bytes=8
        ).run()
        for cat in (Category.DCOMM, Category.SPMM, Category.MISC):
            m = modeled.seconds_by_category[cat]
            e = measured.seconds_by_category[cat]
            assert m == pytest.approx(e, rel=0.1), cat

    def test_dcomm_bytes_match_measured(self, uniform_dataset):
        ds = uniform_dataset
        widths = ds.layer_widths(hidden=16)
        rt = VirtualRuntime.make_1d(8)
        algo = DistGCN1D(rt, ds.adjacency, widths, seed=0, variant="symmetric")
        algo.setup(ds.features, ds.labels)
        measured = algo.train_epoch(0)
        modeled = Model1DEpoch(
            ds.num_vertices, ds.adjacency.nnz, widths, 8, dtype_bytes=8
        ).run()
        # Per-rank critical bytes: modeled tracks a single rank, measured
        # sums all ranks -> divide by P.
        assert modeled.bytes_by_category[Category.DCOMM] == pytest.approx(
            measured.bytes_by_category[Category.DCOMM] / 8, rel=0.02
        )


class TestPaperStories:
    """The memory/words/relative-cost triangle of the 1D-vs-2D choice."""

    def test_2d_moves_fewer_dense_bytes(self):
        m1 = Model1DEpoch.for_published_dataset("protein", 64).run()
        m2 = Model2DEpoch.for_published_dataset("protein", 64).run()
        assert (
            m2.bytes_by_category[Category.DCOMM]
            < m1.bytes_by_category[Category.DCOMM]
        )

    def test_1d_dense_bytes_do_not_scale_with_p(self):
        """The all-gather's per-rank volume is ~n f regardless of P."""
        b16 = Model1DEpoch.for_published_dataset("protein", 16).run()
        b256 = Model1DEpoch.for_published_dataset("protein", 256).run()
        ratio = (
            b16.bytes_by_category[Category.DCOMM]
            / b256.bytes_by_category[Category.DCOMM]
        )
        assert ratio == pytest.approx(1.0, rel=0.1)

    def test_2d_dense_bytes_scale_with_sqrt_p(self):
        b16 = Model2DEpoch.for_published_dataset("protein", 16).run()
        b256 = Model2DEpoch.for_published_dataset("protein", 256).run()
        ratio = (
            b16.bytes_by_category[Category.DCOMM]
            / b256.bytes_by_category[Category.DCOMM]
        )
        assert ratio == pytest.approx(4.0, rel=0.15)  # sqrt(256/16)

    def test_slow_network_favours_2d(self):
        """Section I: slower networks 'increase the relative cost of
        communication, making our reduced-communication algorithms more
        beneficial'."""
        for p in (64, 256):
            fast = (
                Model2DEpoch.for_published_dataset("protein", p, profile=SUMMIT)
                .run().total_seconds
                / Model1DEpoch.for_published_dataset("protein", p, profile=SUMMIT)
                .run().total_seconds
            )
            slow = (
                Model2DEpoch.for_published_dataset("protein", p, profile=COMMODITY)
                .run().total_seconds
                / Model1DEpoch.for_published_dataset("protein", p, profile=COMMODITY)
                .run().total_seconds
            )
            assert slow < fast

    def test_2d_wins_seconds_on_slow_network_at_scale(self):
        m1 = Model1DEpoch.for_published_dataset(
            "protein", 256, profile=COMMODITY
        ).run()
        m2 = Model2DEpoch.for_published_dataset(
            "protein", 256, profile=COMMODITY
        ).run()
        assert m2.total_seconds < m1.total_seconds

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Model1DEpoch(10, 100, (4, 2), 0)
