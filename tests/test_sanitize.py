"""Runtime sanitizers: unit semantics and the bit-equality guarantee.

Unit layer: a mutated copy-on-write receipt raises naming the
collective, a charged/moved byte mismatch raises naming the exchange,
and a replayed or reordered ``(group, seq)`` tag raises naming the
worker pair -- each via :class:`repro.analysis.sanitize.SanitizerError`.

Integration layer: a sanitized fit is **bit-equal** (per-epoch losses
and the ledger digest) to an unsanitized one -- on the virtual backend
and on the process backend over both transports (``REPRO_SANITIZE=1``
rides into spawned workers through the inherited environment), with the
check counters proving the sanitizers actually ran.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import Sanitizer, SanitizerError
from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.parallel import ledger_digest

EPOCHS = 3
HIDDEN = 8


@pytest.fixture(autouse=True)
def _sanitizer_off_between_tests():
    yield
    sanitize.disable()


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=60, avg_degree=4, f=8, n_classes=3, seed=11)


# --------------------------------------------------------------------- #
# unit: copy-on-write receipts
# --------------------------------------------------------------------- #
class TestCowSanitizer:
    def test_mutated_receipt_names_the_collective(self):
        s = Sanitizer()
        arr = np.zeros((3, 2))
        s.register_cow("allreduce", arr)
        arr[0, 0] = 7.0  # a sender writing through the shared buffer
        with pytest.raises(SanitizerError) as exc:
            s.verify_cow("end of epoch 0")
        msg = str(exc.value)
        assert "allreduce" in msg
        assert "(3, 2)" in msg
        assert "end of epoch 0" in msg

    def test_clean_receipts_verify_and_drain(self):
        s = Sanitizer()
        s.register_cow("allgather", np.ones(4))
        s.register_cow("gather", np.ones(2))
        s.verify_cow()
        assert s.stats["cow_verified"] == 2
        # receipts are epoch-scoped: the registry drains after verify,
        # so cross-epoch workspace reuse cannot false-positive
        s.verify_cow()
        assert s.stats["cow_verified"] == 2

    def test_registry_drains_even_when_verify_raises(self):
        s = Sanitizer()
        arr = np.zeros(3)
        s.register_cow("allreduce", arr)
        arr[0] = 1.0
        with pytest.raises(SanitizerError):
            s.verify_cow()
        s.verify_cow()  # nothing left to re-raise on

    def test_stage_scoped_receipts_are_not_registered(self):
        # SUMMA broadcasts alias workspaces their senders legally
        # overwrite per stage; only the durable reduction family
        # registers for epoch-end re-hashing.
        s = Sanitizer()
        arr = np.zeros(4)
        s.register_cow("broadcast", arr)
        s.register_cow("sendrecv", arr)
        assert s.stats["cow_registered"] == 0
        arr[0] = 5.0
        s.verify_cow()  # nothing to check

    def test_window_bounds_memory(self):
        s = Sanitizer()
        for i in range(sanitize.COW_WINDOW + 50):
            s.register_cow("allreduce", np.full(2, float(i)))
        assert len(s._cow) == sanitize.COW_WINDOW
        assert s.stats["cow_registered"] == sanitize.COW_WINDOW + 50


# --------------------------------------------------------------------- #
# unit: ledger vs data plane
# --------------------------------------------------------------------- #
class TestLedgerSanitizer:
    def test_match_passes_and_counts(self):
        s = Sanitizer()
        s.check_exchange("gather_rows:f=8", 1024, 1024)
        assert s.stats["exchanges_checked"] == 1

    def test_mismatch_names_the_exchange(self):
        s = Sanitizer()
        with pytest.raises(SanitizerError) as exc:
            s.check_exchange("sendrecv:('fiber', 2)", 4096, 4032)
        msg = str(exc.value)
        assert "sendrecv:('fiber', 2)" in msg
        assert "4096" in msg and "4032" in msg


# --------------------------------------------------------------------- #
# unit: exchange ordering
# --------------------------------------------------------------------- #
class TestOrderSanitizer:
    def test_increasing_sequences_pass(self):
        s = Sanitizer()
        for seq in (1, 2, 5, 9):
            s.observe_tag(0, src=1, tag=("g", seq))
        assert s.stats["tags_observed"] == 4

    def test_replayed_tag_names_the_worker_pair(self):
        s = Sanitizer()
        s.observe_tag(3, src=1, tag=("g", 4))
        with pytest.raises(SanitizerError) as exc:
            s.observe_tag(3, src=1, tag=("g", 4))
        msg = str(exc.value)
        assert "worker 3" in msg and "peer 1" in msg

    def test_reordered_tag_raises(self):
        s = Sanitizer()
        s.observe_tag(0, src=2, tag=("g", 7))
        with pytest.raises(SanitizerError):
            s.observe_tag(0, src=2, tag=("g", 6))

    def test_streams_are_per_peer_group_and_kind(self):
        s = Sanitizer()
        # the same (group, seq) arrives once as a data post and once as
        # an ack -- two kinds, two streams, no violation
        s.observe_tag(0, src=1, tag=("g", 3), kind="d")
        s.observe_tag(0, src=1, tag=("g", 3), kind="a")
        # distinct peers and groups are independent too
        s.observe_tag(0, src=2, tag=("g", 3), kind="d")
        s.observe_tag(0, src=1, tag=("h", 3), kind="d")

    def test_untagged_messages_are_ignored(self):
        s = Sanitizer()
        s.observe_tag(0, src=1, tag=None)
        s.observe_tag(0, src=1, tag="barrier")
        assert s.stats["tags_observed"] == 0


# --------------------------------------------------------------------- #
# unit: enablement
# --------------------------------------------------------------------- #
class TestEnablement:
    def test_enable_disable_roundtrip(self):
        assert not sanitize.is_enabled()
        s = sanitize.enable()
        assert sanitize.is_enabled() and sanitize.ACTIVE is s
        assert sanitize.enable() is s  # idempotent
        sanitize.disable()
        assert sanitize.ACTIVE is None

    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        assert sanitize.maybe_enable_from_env() is None
        monkeypatch.setenv(sanitize.ENV_FLAG, "0")
        assert sanitize.maybe_enable_from_env() is None
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        assert isinstance(sanitize.maybe_enable_from_env(), Sanitizer)


# --------------------------------------------------------------------- #
# integration: sanitized runs are bit-equal
# --------------------------------------------------------------------- #
def run_virtual(ds, name, kw, p=4):
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0, **kw)
    hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
    losses = [e.loss for e in hist.epochs]
    return losses, ledger_digest(algo.rt.tracker, *losses)


def run_process(ds, transport, kw, workers=2, p=4):
    algo = make_algorithm("1d", p, ds, hidden=HIDDEN, seed=0,
                          backend="process", workers=workers,
                          transport=transport, **kw)
    try:
        hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
        losses = [e.loss for e in hist.epochs]
        digest = ledger_digest(algo.rt.tracker, *losses)
    finally:
        algo.rt.close()
    return losses, digest


class TestBitEquality:
    @pytest.mark.parametrize("name,kw", [
        ("1d", {"variant": "ghost", "partition": "multilevel"}),
        ("2d", {}),
    ])
    def test_virtual_backend(self, ds, name, kw):
        plain = run_virtual(ds, name, kw)
        san = sanitize.enable()
        try:
            sanitized = run_virtual(ds, name, kw)
            stats = dict(san.stats)
        finally:
            sanitize.disable()
        assert sanitized == plain
        # the checks actually ran: COW receipts re-hashed every epoch,
        # and (for ghost) the exact-accounting exchange audited
        assert stats["cow_verified"] > 0
        if name == "1d":
            assert stats["exchanges_checked"] > 0

    @pytest.mark.parametrize("transport", ["shm", "tcp"])
    def test_process_backend_both_transports(self, ds, transport,
                                             monkeypatch):
        kw = {"variant": "ghost", "partition": "multilevel"}
        plain = run_process(ds, transport, kw)
        # spawned workers inherit the environment and self-enable
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        sanitized = run_process(ds, transport, kw)
        assert sanitized == plain
        assert plain[0] == run_virtual(ds, "1d", kw)[0]
