"""Cross-algorithm integration: the facade, equivalence, end-to-end runs."""

import numpy as np
import pytest

from repro.analysis.figures import FIG2_GPU_COUNTS, figure2_throughput
from repro.comm import VirtualRuntime
from repro.dist import ALGORITHMS, make_algorithm, make_runtime_for
from repro.graph import make_standin, make_synthetic
from repro.graph.permutation import apply_random_permutation, invert_permutation
from repro.nn import SGD, SerialTrainer


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=120, avg_degree=5, f=12, n_classes=4, seed=31)


class TestFacade:
    def test_runtime_topologies(self):
        assert make_runtime_for("1d", 6).mesh.ndim == 1
        assert make_runtime_for("1.5d", 6).mesh.ndim == 1
        assert make_runtime_for("2d", 9).mesh.ndim == 2
        assert make_runtime_for("3d", 8).mesh.ndim == 3

    def test_rectangular_grid_option(self):
        rt = make_runtime_for("2d", 6, grid=(2, 3))
        assert (rt.mesh.rows, rt.mesh.cols) == (2, 3)

    def test_unknown_algorithm(self, ds):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_algorithm("4d", 4, ds)
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_runtime_for("hypercube", 4)

    def test_kwargs_passthrough(self, ds):
        algo = make_algorithm("1.5d", 8, ds, hidden=8, replication=4)
        assert algo.c == 4
        algo = make_algorithm("1d", 4, ds, hidden=8, variant="outer")
        assert algo.variant == "outer"
        algo = make_algorithm("2d", 4, ds, hidden=8, summa_block=8)
        assert algo.summa_block == 8

    def test_registry_covers_paper_algorithms(self):
        assert set(ALGORITHMS) == {"1d", "1.5d", "2d", "3d"}


class TestCrossAlgorithmEquivalence:
    def test_all_algorithms_identical_losses(self, ds):
        """Every parallel algorithm computes the same full-batch gradient
        descent: per-epoch losses must agree to fp accumulation error."""
        configs = [
            ("1d", 4, {}),
            ("1.5d", 4, {"replication": 2}),
            ("2d", 4, {}),
            ("3d", 8, {}),
        ]
        losses = {}
        for name, p, kwargs in configs:
            algo = make_algorithm(
                name, p, ds, hidden=8, seed=7, optimizer=SGD(lr=0.2), **kwargs
            )
            hist = algo.fit(ds.features, ds.labels, epochs=5)
            losses[name] = hist.losses
        base = losses["1d"]
        for name, ls in losses.items():
            np.testing.assert_allclose(ls, base, rtol=1e-9, err_msg=name)

    def test_serial_matches_distributed_losses(self, ds):
        serial = SerialTrainer.for_dataset(
            ds, hidden=8, seed=7, optimizer=SGD(lr=0.2)
        )
        s_hist = serial.train(ds.features, ds.labels, epochs=5)
        algo = make_algorithm("2d", 9, ds, hidden=8, seed=7, optimizer=SGD(lr=0.2))
        d_hist = algo.fit(ds.features, ds.labels, epochs=5)
        np.testing.assert_allclose(d_hist.losses, s_hist.losses, rtol=1e-9)


class TestPermutationEquivalence:
    def test_training_invariant_under_vertex_relabelling(self, ds):
        """Random vertex permutation (the 2D load-balance preprocessing)
        must not change the loss trajectory -- it is a similarity
        transform of the whole problem."""
        base = SerialTrainer.for_dataset(ds, hidden=8, seed=3, optimizer=SGD(lr=0.2))
        h_base = base.train(ds.features, ds.labels, epochs=5)

        a2, f2, y2, perm = apply_random_permutation(
            ds.adjacency, ds.features, ds.labels, seed=9
        )
        from repro.nn.model import GCN

        model = GCN(ds.layer_widths(hidden=8), seed=3)
        permuted = SerialTrainer(model, a2, optimizer=SGD(lr=0.2))
        h_perm = permuted.train(f2, y2, epochs=5)
        np.testing.assert_allclose(h_perm.losses, h_base.losses, rtol=1e-9)

    def test_embeddings_map_back(self, ds):
        a2, f2, y2, perm = apply_random_permutation(
            ds.adjacency, ds.features, ds.labels, seed=10
        )
        from repro.nn.model import GCN

        m1 = GCN(ds.layer_widths(hidden=8), seed=5)
        lp1 = m1.predict(ds.adjacency, ds.features)
        m2 = GCN(ds.layer_widths(hidden=8), seed=5)
        lp2 = m2.predict(a2, f2)
        inv = invert_permutation(perm)
        np.testing.assert_allclose(lp2[perm], lp1, atol=1e-9)
        np.testing.assert_allclose(lp2, lp1[inv], atol=1e-9)


class TestEndToEnd:
    def test_standin_trains_distributed(self):
        """A Table VI stand-in end to end on the 2D algorithm."""
        ds = make_standin("reddit", scale_divisor=2048, seed=0)
        algo = make_algorithm("2d", 4, ds, seed=0, optimizer=SGD(lr=0.1))
        hist = algo.fit(ds.features, ds.labels, epochs=5)
        assert hist.final_loss < hist.losses[0]
        assert hist.epochs[-1].train_accuracy >= 0.0

    def test_accuracy_reaches_high_on_separable_data(self):
        """Sanity: an SBM graph with community-correlated labels is
        learnable to high training accuracy."""
        from repro.graph.generators import stochastic_block_model
        from repro.graph.normalize import gcn_normalize
        from repro.graph.datasets import Dataset

        k, size = 3, 40
        adj = gcn_normalize(
            stochastic_block_model((size,) * k, p_in=0.3, p_out=0.01, seed=1)
        )
        n = k * size
        rng = np.random.default_rng(2)
        labels = np.repeat(np.arange(k), size)
        feats = rng.standard_normal((n, 8)) + 3.0 * labels[:, None]
        ds = Dataset(
            name="sbm", adjacency=adj, features=feats, labels=labels,
            num_classes=k, train_mask=np.ones(n, dtype=bool),
        )
        from repro.nn import Adam

        algo = make_algorithm(
            "2d", 4, ds, hidden=16, seed=0, optimizer=Adam(lr=0.02)
        )
        hist = algo.fit(ds.features, ds.labels, epochs=150)
        assert hist.epochs[-1].train_accuracy > 0.9

    def test_figure2_series_complete(self):
        pts = figure2_throughput()
        expected = sum(len(v) for v in FIG2_GPU_COUNTS.values())
        assert len(pts) == expected
        for pt in pts:
            assert pt.epochs_per_second > 0
            assert set(pt.breakdown) == {
                "scomm", "dcomm", "trpose", "spmm", "misc",
            }
