"""Distributed inference and held-out evaluation.

Section I: "while our focus is on GNN training, all of our algorithms are
applicable to GNN inference."
"""

import numpy as np
import pytest

from repro.comm import Category, VirtualRuntime
from repro.dist import DistGCN2D, make_algorithm
from repro.graph import make_synthetic, split_masks
from repro.nn import GCN, SGD


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=130, avg_degree=5, f=12, n_classes=4, seed=47)


class TestDistributedInference:
    @pytest.mark.parametrize("name,p,kwargs", [
        ("1d", 4, {}),
        ("1.5d", 4, {"replication": 2}),
        ("2d", 4, {}),
        ("3d", 8, {}),
    ])
    def test_inference_matches_serial(self, ds, name, p, kwargs):
        widths = ds.layer_widths(hidden=8)
        serial = GCN(widths, seed=11)
        expected = serial.predict(ds.adjacency, ds.features)
        algo = make_algorithm(name, p, ds, hidden=8, seed=11, **kwargs)
        got = algo.predict(ds.features)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_inference_cheaper_than_training_epoch(self, ds):
        """Inference pays only the forward pass's communication."""
        widths = ds.layer_widths(hidden=8)
        rt = VirtualRuntime.make_2d(4)
        algo = DistGCN2D(rt, ds.adjacency, widths, seed=0)
        algo.setup(ds.features, ds.labels)
        before = rt.tracker.comm_bytes()
        algo.predict()
        inference_bytes = rt.tracker.comm_bytes() - before
        before = rt.tracker.comm_bytes()
        algo.train_epoch(0)
        epoch_bytes = rt.tracker.comm_bytes() - before
        assert 0 < inference_bytes < 0.7 * epoch_bytes

    def test_predict_without_setup_rejected(self, ds):
        algo = make_algorithm("2d", 4, ds, hidden=8)
        with pytest.raises(RuntimeError, match="setup"):
            algo.predict()

    def test_predict_after_fit_uses_trained_weights(self, ds):
        algo = make_algorithm("2d", 4, ds, hidden=8, seed=1,
                              optimizer=SGD(lr=0.3))
        algo.fit(ds.features, ds.labels, epochs=10)
        lp = algo.predict()
        from repro.nn.loss import nll_loss

        loss, _ = nll_loss(lp, ds.labels)
        fresh = make_algorithm("2d", 4, ds, hidden=8, seed=1)
        lp0 = fresh.predict(ds.features)
        loss0, _ = nll_loss(lp0, ds.labels)
        assert loss < loss0  # training helped


class TestSplitsAndEvaluation:
    def test_split_masks_partition(self):
        train, val, test = split_masks(100, 0.6, 0.2, seed=0)
        total = train.astype(int) + val.astype(int) + test.astype(int)
        assert np.all(total == 1)
        assert train.sum() == 60 and val.sum() == 20 and test.sum() == 20

    def test_split_masks_validation(self):
        with pytest.raises(ValueError):
            split_masks(10, 0.0, 0.2)
        with pytest.raises(ValueError):
            split_masks(10, 0.8, 0.3)

    def test_dataset_with_split(self, ds):
        split = ds.with_split(0.5, 0.25, seed=1)
        assert split.val_mask is not None and split.test_mask is not None
        assert split.train_mask.sum() == round(0.5 * ds.num_vertices)
        # Original dataset untouched.
        assert ds.val_mask is None
        assert ds.train_mask.all()

    def test_masked_training_and_heldout_eval(self, ds):
        """Train on the train split only; evaluate on the test split."""
        split = ds.with_split(0.6, 0.2, seed=2)
        algo = make_algorithm("2d", 4, split, hidden=8, seed=3,
                              optimizer=SGD(lr=0.3))
        history = algo.fit(
            split.features, split.labels, epochs=10, mask=split.train_mask
        )
        assert history.final_loss < history.losses[0]
        test_loss, test_acc = algo.evaluate(split.labels, split.test_mask)
        assert np.isfinite(test_loss)
        assert 0.0 <= test_acc <= 1.0

    def test_masked_distributed_matches_masked_serial(self, ds):
        """Masked full-batch loss: distributed == serial (the mini-batch
        mode the paper says its algorithms 'can be easily modified' to)."""
        from repro.nn import SerialTrainer

        split = ds.with_split(0.5, 0.2, seed=4)
        serial = SerialTrainer.for_dataset(
            ds, hidden=8, seed=5, optimizer=SGD(lr=0.2)
        )
        s_hist = serial.train(
            split.features, split.labels, epochs=5, mask=split.train_mask
        )
        algo = make_algorithm("2d", 9, split, hidden=8, seed=5,
                              optimizer=SGD(lr=0.2))
        d_hist = algo.fit(
            split.features, split.labels, epochs=5, mask=split.train_mask
        )
        np.testing.assert_allclose(
            d_hist.losses, [e.loss for e in s_hist.epochs], rtol=1e-9
        )
