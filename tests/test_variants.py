"""GraphSAGE and GIN layers: finite-difference gradient checks.

The paper claims its primitives cover "anything that is supported by
PyTorch Geometric"; these variants exercise that claim with exact
gradients through the same SpMM substrate.
"""

import numpy as np
import pytest

from repro.graph import make_synthetic
from repro.graph.normalize import row_normalize
from repro.nn.activations import Identity, ReLU
from repro.nn.loss import nll_loss
from repro.nn.variants import GINLayer, SAGELayer
from repro.sparse.csr import CSRMatrix
from repro.sparse.spmm import spmm


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=40, avg_degree=4, f=8, n_classes=3, seed=61)


def scalar_loss(out: np.ndarray, probe: np.ndarray) -> float:
    """Deterministic scalar functional for gradient checking."""
    return float(np.sum(out * probe))


class TestSAGELayer:
    def _layer(self, seed=0, f_in=8, f_out=5, act=None):
        rng = np.random.default_rng(seed)
        return SAGELayer(
            rng.standard_normal((f_in, f_out)),
            rng.standard_normal((f_in, f_out)),
            activation=act or ReLU(),
        )

    def test_forward_formula(self, ds):
        layer = self._layer(act=Identity())
        a = ds.adjacency
        out, cache = layer.forward(a, ds.features)
        expected = (
            ds.features @ layer.w_self
            + spmm(a, ds.features) @ layer.w_neigh
        )
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_weight_shapes_must_match(self):
        with pytest.raises(ValueError, match="differ"):
            SAGELayer(np.zeros((4, 3)), np.zeros((4, 2)))

    def test_input_width_checked(self, ds):
        layer = self._layer(f_in=5)
        with pytest.raises(ValueError, match="width"):
            layer.forward(ds.adjacency, ds.features)

    def test_gradients_match_finite_differences(self, ds):
        a = row_normalize(ds.adjacency)
        at = a.transpose()
        layer = self._layer(seed=1)
        rng = np.random.default_rng(2)
        probe = rng.standard_normal((40, 5))
        out, cache = layer.forward(a, ds.features)
        g_in, g_ws, g_wn = layer.backward(at, cache, probe)
        eps = 1e-6
        for name, w, grad in (
            ("w_self", layer.w_self, g_ws),
            ("w_neigh", layer.w_neigh, g_wn),
        ):
            for idx in [(0, 0), (3, 2), (7, 4)]:
                w[idx] += eps
                up, _ = layer.forward(a, ds.features)
                w[idx] -= 2 * eps
                dn, _ = layer.forward(a, ds.features)
                w[idx] += eps
                fd = (scalar_loss(up, probe) - scalar_loss(dn, probe)) / (2 * eps)
                assert grad[idx] == pytest.approx(fd, abs=1e-5), (name, idx)

    def test_input_gradient_matches_finite_differences(self, ds):
        a = row_normalize(ds.adjacency)
        layer = self._layer(seed=3)
        rng = np.random.default_rng(4)
        probe = rng.standard_normal((40, 5))
        h = ds.features.copy()
        out, cache = layer.forward(a, h)
        g_in, _, _ = layer.backward(a.transpose(), cache, probe)
        eps = 1e-6
        for idx in [(0, 0), (17, 3), (39, 7)]:
            h[idx] += eps
            up, _ = layer.forward(a, h)
            h[idx] -= 2 * eps
            dn, _ = layer.forward(a, h)
            h[idx] += eps
            fd = (scalar_loss(up, probe) - scalar_loss(dn, probe)) / (2 * eps)
            assert g_in[idx] == pytest.approx(fd, abs=1e-5)


class TestGINLayer:
    def test_forward_formula(self, ds):
        rng = np.random.default_rng(5)
        layer = GINLayer(rng.standard_normal((8, 4)), eps=0.3,
                         activation=Identity())
        out, _ = layer.forward(ds.adjacency, ds.features)
        expected = (
            1.3 * ds.features + spmm(ds.adjacency, ds.features)
        ) @ layer.weight
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_weight_and_eps_gradients(self, ds):
        a = ds.adjacency
        rng = np.random.default_rng(6)
        layer = GINLayer(rng.standard_normal((8, 4)), eps=0.2)
        probe = rng.standard_normal((40, 4))
        out, cache = layer.forward(a, ds.features)
        _, grad_w, grad_eps = layer.backward(a.transpose(), cache, probe)
        eps = 1e-6
        for idx in [(0, 0), (4, 2), (7, 3)]:
            layer.weight[idx] += eps
            up, _ = layer.forward(a, ds.features)
            layer.weight[idx] -= 2 * eps
            dn, _ = layer.forward(a, ds.features)
            layer.weight[idx] += eps
            fd = (scalar_loss(up, probe) - scalar_loss(dn, probe)) / (2 * eps)
            assert grad_w[idx] == pytest.approx(fd, abs=1e-5)
        # eps gradient
        layer.eps += eps
        up, _ = layer.forward(a, ds.features)
        layer.eps -= 2 * eps
        dn, _ = layer.forward(a, ds.features)
        layer.eps += eps
        fd = (scalar_loss(up, probe) - scalar_loss(dn, probe)) / (2 * eps)
        assert grad_eps == pytest.approx(fd, abs=1e-5)

    def test_sum_aggregation_distinguishes_multisets(self):
        """GIN's raison d'etre (Xu et al.): SUM distinguishes neighbour
        multisets that MEAN collapses.  Two hubs with identical mean
        neighbour features but different counts must embed differently
        under GIN and identically under mean-SAGE."""
        # Vertices: hub0 with 2 leaves, hub1 with 4 leaves; all leaf
        # features equal.
        n = 8
        rows = [0, 0, 1, 1, 1, 1]
        cols = [2, 3, 4, 5, 6, 7]
        a = CSRMatrix.from_coo(
            np.array(rows), np.array(cols), np.ones(6), (n, n)
        )
        h = np.ones((n, 2))
        gin = GINLayer(np.eye(2), eps=0.0, activation=Identity())
        out_gin, _ = gin.forward(a, h)
        assert not np.allclose(out_gin[0], out_gin[1])  # 2 vs 4 neighbours
        sage = SAGELayer(np.zeros((2, 2)), np.eye(2), activation=Identity())
        a_mean = row_normalize(a)
        out_sage, _ = sage.forward(a_mean, h)
        np.testing.assert_allclose(out_sage[0], out_sage[1])  # mean collapses

    def test_end_to_end_training_decreases_loss(self, ds):
        """A 2-layer SAGE network trained with manual SGD."""
        from repro.nn.activations import LogSoftmax

        a = row_normalize(ds.adjacency)
        at = a.transpose()
        rng = np.random.default_rng(7)
        l1 = SAGELayer(
            0.3 * rng.standard_normal((8, 8)),
            0.3 * rng.standard_normal((8, 8)),
        )
        l2 = SAGELayer(
            0.3 * rng.standard_normal((8, 3)),
            0.3 * rng.standard_normal((8, 3)),
            activation=LogSoftmax(),
        )
        lr = 0.3
        losses = []
        for _ in range(20):
            h1, c1 = l1.forward(a, ds.features)
            lp, c2 = l2.forward(a, h1)
            loss, grad = nll_loss(lp, ds.labels)
            losses.append(loss)
            gh1, gws2, gwn2 = l2.backward(at, c2, grad)
            _, gws1, gwn1 = l1.backward(at, c1, gh1)
            l2.w_self -= lr * gws2
            l2.w_neigh -= lr * gwn2
            l1.w_self -= lr * gws1
            l1.w_neigh -= lr * gwn1
        assert losses[-1] < losses[0]
