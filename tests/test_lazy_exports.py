"""The PEP 562 lazy-export table stays in sync with reality.

``repro/__init__.py`` resolves top-level names on first access; nothing
at import time checks that the table's entries exist, that ``__all__``
matches, or that ``dir()`` advertises them -- a stale table would only
surface when a user touches the dead name.  These tests make the
contract executable: every advertised export resolves, every table entry
really is exported by its providing module, every subpackage imports,
and unknown names still raise ``AttributeError``.
"""

from __future__ import annotations

import importlib
import subprocess
import sys

import pytest

import repro


class TestLazyExportTable:
    def test_all_matches_export_table(self):
        assert repro.__all__ == ["__version__"] + sorted(repro._EXPORTS)

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_every_export_comes_from_its_module(self):
        for name, modname in repro._EXPORTS.items():
            module = importlib.import_module(modname)
            assert hasattr(module, name), f"{modname} does not export {name}"
            assert getattr(repro, name) is getattr(module, name)

    def test_dir_advertises_exports_and_subpackages(self):
        listing = dir(repro)
        for name in repro.__all__:
            assert name in listing
        for sub in repro._SUBPACKAGES:
            assert sub in listing

    def test_every_subpackage_imports(self):
        for sub in repro._SUBPACKAGES:
            module = getattr(repro, sub)
            assert module.__name__ == f"repro.{sub}"

    def test_parallel_subsystem_is_registered(self):
        """ISSUE 4's new subsystem must be reachable lazily."""
        assert "parallel" in repro._SUBPACKAGES
        for name in ("ProcessBackend", "ParallelRuntime",
                     "ParallelAlgorithm"):
            assert repro._EXPORTS[name] == "repro.parallel"
            assert getattr(repro, name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_bare_import_stays_lazy(self):
        """``import repro`` must not drag the heavy subsystems in."""
        code = (
            "import sys, repro; "
            "heavy = [m for m in ('repro.dist', 'repro.parallel', "
            "'repro.simulate', 'repro.analysis') if m in sys.modules]; "
            "assert not heavy, heavy"
        )
        subprocess.run([sys.executable, "-c", code], check=True)
