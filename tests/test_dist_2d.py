"""The 2D SUMMA algorithm (Algorithm 2): the paper's implementation."""

import numpy as np
import pytest

from repro.comm import Category, VirtualRuntime
from repro.dist.algo_2d import DistGCN2D, summa_stage_ranges
from repro.graph import make_synthetic


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=110, avg_degree=5, f=12, n_classes=4, seed=23)


WIDTHS = (12, 8, 4)


class TestStageRanges:
    def test_square_grid_stages(self):
        stages = summa_stage_ranges(12, 3, 3)
        assert len(stages) == 3
        assert [(lo, hi) for lo, hi, _, _ in stages] == [(0, 4), (4, 8), (8, 12)]
        # Owners follow the block index.
        assert [ro for _, _, ro, _ in stages] == [0, 1, 2]
        assert [co for _, _, _, co in stages] == [0, 1, 2]

    def test_rectangular_refinement(self):
        stages = summa_stage_ranges(12, 2, 3)
        # Boundaries at 0,4,6,8,12 -> 4 stages.
        assert [(lo, hi) for lo, hi, _, _ in stages] == [
            (0, 4), (4, 6), (6, 8), (8, 12),
        ]
        # Each stage sits in exactly one row range and one col range.
        for lo, hi, ro, co in stages:
            assert 6 * ro <= lo < hi <= 6 * (ro + 1)
            assert 4 * co <= lo < hi <= 4 * (co + 1)

    def test_blocking_parameter_subdivides(self):
        plain = summa_stage_ranges(16, 2, 2)
        blocked = summa_stage_ranges(16, 2, 2, block=4)
        assert len(blocked) == 2 * len(plain)
        # Byte totals preserved: union of ranges identical.
        assert sum(hi - lo for lo, hi, _, _ in blocked) == 16

    def test_uneven_division(self):
        stages = summa_stage_ranges(10, 3, 3)
        assert sum(hi - lo for lo, hi, _, _ in stages) == 10


class TestVerification:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_square_grids_match_serial(self, ds, p):
        rt = VirtualRuntime.make_2d(p)
        algo = DistGCN2D(rt, ds.adjacency, WIDTHS, seed=1)
        diff = algo.verify_against_serial(ds.features, ds.labels, epochs=3, seed=1)
        assert diff < 1e-10

    @pytest.mark.parametrize("rows,cols", [(1, 4), (4, 1), (2, 3), (3, 2)])
    def test_rectangular_grids_match_serial(self, ds, rows, cols):
        """Section IV-C.6: the rectangular case is well-defined."""
        rt = VirtualRuntime.make_2d_rect(rows, cols)
        algo = DistGCN2D(rt, ds.adjacency, WIDTHS, seed=2)
        diff = algo.verify_against_serial(ds.features, ds.labels, epochs=2, seed=2)
        assert diff < 1e-10

    @pytest.mark.parametrize("block", [1, 8, 64])
    def test_blocking_parameter_preserves_results(self, ds, block):
        """Algorithm 2's blocking parameter b must not change numerics."""
        rt = VirtualRuntime.make_2d(4)
        algo = DistGCN2D(rt, ds.adjacency, WIDTHS, seed=3, summa_block=block)
        diff = algo.verify_against_serial(ds.features, ds.labels, epochs=2, seed=3)
        assert diff < 1e-10

    def test_narrow_features_fewer_than_grid(self):
        """f < sqrt(P) produces empty feature blocks on some columns --
        the hypersparse/skinny regime of Section VI-a."""
        ds2 = make_synthetic(n=80, avg_degree=4, f=2, n_classes=2, seed=4)
        rt = VirtualRuntime.make_2d(16)
        algo = DistGCN2D(rt, ds2.adjacency, (2, 3, 2), seed=4)
        diff = algo.verify_against_serial(ds2.features, ds2.labels, epochs=2, seed=4)
        assert diff < 1e-10

    def test_directed_adjacency(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(60, 4.0, seed=5, directed=True))
        )
        rng = np.random.default_rng(1)
        feats = rng.standard_normal((60, 8))
        labels = rng.integers(0, 3, 60)
        rt = VirtualRuntime.make_2d(4)
        algo = DistGCN2D(rt, directed, (8, 6, 3), seed=5)
        diff = algo.verify_against_serial(feats, labels, epochs=3, seed=5)
        assert diff < 1e-10


class TestCommunicationAccounting:
    def _epoch(self, ds, p, widths=WIDTHS):
        rt = VirtualRuntime.make_2d(p)
        algo = DistGCN2D(rt, ds.adjacency, widths, seed=0)
        algo.setup(ds.features, ds.labels)
        return algo.train_epoch(0)

    def test_all_three_comm_categories_present(self, ds):
        """2D moves sparse blocks (scomm), dense blocks (dcomm) and pays
        the per-epoch transpose (trpose) -- Fig. 3's stack."""
        st = self._epoch(ds, 4)
        assert st.scomm_bytes > 0
        assert st.dcomm_bytes > 0
        assert st.bytes_by_category[Category.TRPOSE] > 0

    def test_per_rank_comm_shrinks_with_sqrt_p(self):
        """The headline claim: per-process words scale as 1/sqrt(P).

        Doubling sqrt(P) (P: 4 -> 16) must cut per-rank dense bytes by
        roughly half (allowing generous slack for the f^2 and remainder
        terms on a small graph)."""
        big = make_synthetic(n=600, avg_degree=6, f=32, n_classes=4, seed=6)
        w = (32, 16, 4)
        st4 = self._epoch(big, 4, w)
        st16 = self._epoch(big, 16, w)
        ratio = st4.max_rank_comm_bytes / st16.max_rank_comm_bytes
        assert 1.5 < ratio < 3.0  # ideal 2.0

    def test_total_sparse_bytes_grow_with_sqrt_p(self):
        """Aggregate sparse traffic is nnz * sqrt(P) words: each stage
        broadcasts nnz/P to sqrt(P)-1 receivers, P stages per SpMM."""
        big = make_synthetic(n=600, avg_degree=6, f=32, n_classes=4, seed=6)
        w = (32, 16, 4)
        st4 = self._epoch(big, 4, w)
        st16 = self._epoch(big, 16, w)
        # Per-rank scomm should be roughly flat-to-halving; totals grow.
        assert st16.scomm_bytes > st4.scomm_bytes

    def test_epoch_deterministic(self, ds):
        s1 = self._epoch(ds, 9)
        s2 = self._epoch(ds, 9)
        assert s1.dcomm_bytes == s2.dcomm_bytes
        assert s1.scomm_bytes == s2.scomm_bytes


class TestTrainingBehaviour:
    def test_loss_decreases(self, ds):
        rt = VirtualRuntime.make_2d(9)
        algo = DistGCN2D(rt, ds.adjacency, WIDTHS, seed=7)
        hist = algo.fit(ds.features, ds.labels, epochs=15)
        assert hist.final_loss < hist.losses[0]

    def test_wrong_mesh_rejected(self, ds):
        rt = VirtualRuntime.make_1d(4)
        with pytest.raises(TypeError, match="2D mesh"):
            DistGCN2D(rt, ds.adjacency, WIDTHS)

    def test_gather_log_probs_shape(self, ds):
        rt = VirtualRuntime.make_2d(4)
        algo = DistGCN2D(rt, ds.adjacency, WIDTHS, seed=8)
        algo.fit(ds.features, ds.labels, epochs=1)
        lp = algo.gather_log_probs()
        assert lp.shape == (ds.num_vertices, WIDTHS[-1])
        np.testing.assert_allclose(np.exp(lp).sum(axis=1), 1.0, atol=1e-9)
