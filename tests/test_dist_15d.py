"""The 1.5D block-row algorithm: replication-for-bandwidth trade."""

import numpy as np
import pytest

from repro.comm import VirtualRuntime
from repro.dist.algo_15d import DistGCN15D
from repro.graph import make_synthetic


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=96, avg_degree=5, f=10, n_classes=4, seed=17)


WIDTHS = (10, 8, 4)


class TestVerification:
    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (4, 4), (8, 2), (9, 3)])
    def test_matches_serial(self, ds, p, c):
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN15D(rt, ds.adjacency, WIDTHS, replication=c, seed=1)
        diff = algo.verify_against_serial(ds.features, ds.labels, epochs=3, seed=1)
        assert diff < 1e-10

    def test_uneven_groups(self):
        ds2 = make_synthetic(n=101, avg_degree=4, f=6, n_classes=3, seed=2)
        rt = VirtualRuntime.make_1d(6)
        algo = DistGCN15D(rt, ds2.adjacency, (6, 5, 3), replication=2, seed=0)
        diff = algo.verify_against_serial(ds2.features, ds2.labels, epochs=2, seed=0)
        assert diff < 1e-10

    def test_replication_must_divide_p(self, ds):
        rt = VirtualRuntime.make_1d(6)
        with pytest.raises(ValueError, match="divide"):
            DistGCN15D(rt, ds.adjacency, WIDTHS, replication=4)

    def test_requires_symmetric(self):
        from repro.graph.generators import erdos_renyi
        from repro.graph.normalize import add_self_loops, row_normalize

        directed = row_normalize(
            add_self_loops(erdos_renyi(40, 4.0, seed=3, directed=True))
        )
        rt = VirtualRuntime.make_1d(4)
        with pytest.raises(ValueError, match="symmetric"):
            DistGCN15D(rt, directed, (8, 4, 2), replication=2)


class TestReplicationTrade:
    def _broadcast_bytes(self, ds, p, c):
        rt = VirtualRuntime.make_1d(p)
        algo = DistGCN15D(rt, ds.adjacency, WIDTHS, replication=c, seed=0)
        algo.setup(ds.features, ds.labels)
        st = algo.train_epoch(0)
        return st, algo

    def test_higher_c_cuts_per_rank_volume_up_to_optimum(self):
        """The c-fold bandwidth reduction: per-rank words follow
        ``2nf/c + 4nfc/P``, optimal at ``c* = sqrt(P/2)``.  At P = 32 the
        curve is strictly decreasing through c = 1, 2, 4."""
        big = make_synthetic(n=320, avg_degree=5, f=16, n_classes=4, seed=4)
        w = (16, 8, 4)
        per_rank = {}
        for c in (1, 2, 4):
            rt = VirtualRuntime.make_1d(32)
            algo = DistGCN15D(rt, big.adjacency, w, replication=c, seed=0)
            algo.setup(big.features, big.labels)
            st = algo.train_epoch(0)
            per_rank[c] = st.max_rank_comm_bytes
        assert per_rank[2] < per_rank[1]
        assert per_rank[4] < per_rank[2]

    def test_past_optimum_c_hurts(self):
        """Beyond c* = sqrt(P/2) the fiber all-reduce term dominates and
        more replication makes communication WORSE (P = 8, c* = 2)."""
        big = make_synthetic(n=320, avg_degree=5, f=16, n_classes=4, seed=4)
        w = (16, 8, 4)
        per_rank = {}
        for c in (2, 8):
            rt = VirtualRuntime.make_1d(8)
            algo = DistGCN15D(rt, big.adjacency, w, replication=c, seed=0)
            algo.setup(big.features, big.labels)
            st = algo.train_epoch(0)
            per_rank[c] = st.max_rank_comm_bytes
        assert per_rank[8] > per_rank[2]

    def test_memory_grows_with_c(self, ds):
        """Section IV-B's cost: dense replication factor c."""
        mems = {}
        for c in (1, 2, 4):
            st, algo = self._broadcast_bytes(ds, 4, c)
            # groups q = P/c shrink, so each group's (replicated) dense
            # stack grows ~ c-fold per rank.
            mems[c] = algo.dense_memory_words_per_rank()
        assert mems[2] > mems[1]
        assert mems[4] > mems[2]

    def test_c1_equals_1d_symmetric_losses(self, ds):
        """c = 1 degenerates to the 1D algorithm exactly."""
        from repro.dist.algo_1d import DistGCN1D

        rt1 = VirtualRuntime.make_1d(4)
        one_d = DistGCN1D(rt1, ds.adjacency, WIDTHS, seed=3, variant="symmetric")
        h1 = one_d.fit(ds.features, ds.labels, epochs=4)
        rt2 = VirtualRuntime.make_1d(4)
        c1 = DistGCN15D(rt2, ds.adjacency, WIDTHS, replication=1, seed=3)
        h2 = c1.fit(ds.features, ds.labels, epochs=4)
        np.testing.assert_allclose(h1.losses, h2.losses, rtol=1e-12)

    def test_loss_decreases(self, ds):
        rt = VirtualRuntime.make_1d(8)
        algo = DistGCN15D(rt, ds.adjacency, WIDTHS, replication=4, seed=5)
        hist = algo.fit(ds.features, ds.labels, epochs=15)
        assert hist.final_loss < hist.losses[0]
