"""Unit tests for the shared-memory codec and arena (no processes)."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.parallel.shm import (
    Arena,
    decode_payload,
    desc_needs_ack,
    encode_payload,
)
from repro.sparse.csr import CSRMatrix


@pytest.fixture
def arena():
    shm = shared_memory.SharedMemory(create=True, size=1 << 20)
    a = Arena(shm)
    yield a
    shm.close()
    shm.unlink()


def roundtrip(arena, obj, inline_max=128):
    eph = []
    desc = encode_payload(arena, obj, eph, inline_max=inline_max)
    out = decode_payload(desc, arena.shm.buf)
    for seg in eph:
        seg.close()
        seg.unlink()
    return desc, out


class TestArena:
    def test_alloc_aligns_and_resets(self, arena):
        o1 = arena.alloc(100)
        o2 = arena.alloc(100)
        assert o1 % 64 == 0 and o2 % 64 == 0 and o2 >= o1 + 100
        arena.reset()
        assert arena.alloc(100) == o1

    def test_alloc_overflow_returns_none(self, arena):
        assert arena.alloc(arena.size + 1) is None


class TestCodec:
    def test_none_roundtrip(self, arena):
        desc, out = roundtrip(arena, None)
        assert desc == ("none",) and out is None
        assert not desc_needs_ack(desc)

    def test_inline_array_is_private_copy(self, arena):
        src = np.arange(6.0).reshape(2, 3)
        desc, out = roundtrip(arena, src, inline_max=1024)
        assert desc[0] == "inl" and not desc_needs_ack(desc)
        np.testing.assert_array_equal(out, src)
        assert desc[1] is not src  # feeder-thread pickling safety

    def test_shm_array_roundtrip_exact(self, arena):
        rng = np.random.default_rng(0)
        src = rng.standard_normal((64, 32))
        desc, out = roundtrip(arena, src, inline_max=16)
        assert desc[0] == "arr" and desc_needs_ack(desc)
        assert out.dtype == src.dtype and out.shape == src.shape
        np.testing.assert_array_equal(out, src)
        assert out.flags.owndata  # a private copy, not an shm view

    def test_noncontiguous_and_int_arrays(self, arena):
        src = np.arange(64, dtype=np.int64).reshape(8, 8)[::2, 1::2]
        desc, out = roundtrip(arena, src, inline_max=8)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, src)

    def test_csr_roundtrip_exact(self, arena):
        rng = np.random.default_rng(1)
        dense = (rng.random((20, 16)) < 0.2) * rng.standard_normal((20, 16))
        src = CSRMatrix.from_dense(dense)
        desc, out = roundtrip(arena, src, inline_max=32)
        assert desc[0] == "csr"
        assert isinstance(out, CSRMatrix)
        assert out.shape == src.shape
        for field in ("indptr", "indices", "data"):
            got, want = getattr(out, field), getattr(src, field)
            assert got.dtype == want.dtype
            np.testing.assert_array_equal(got, want)

    def test_arena_overflow_spills_to_ephemeral(self):
        shm = shared_memory.SharedMemory(create=True, size=256)
        arena = Arena(shm)
        try:
            src = np.arange(1024.0)  # 8 KiB >> 256 B arena
            eph = []
            desc = encode_payload(arena, src, eph, inline_max=16)
            assert desc[0] == "arr" and desc[3] is not None  # named segment
            assert len(eph) == 1 and desc_needs_ack(desc)
            out = decode_payload(desc, arena.shm.buf)
            np.testing.assert_array_equal(out, src)
            for seg in eph:
                seg.close()
                seg.unlink()
        finally:
            shm.close()
            shm.unlink()

    def test_unsupported_payload_raises(self, arena):
        with pytest.raises(TypeError, match="cannot ship"):
            encode_payload(arena, {"a": 1}, [])
