"""Graph I/O: NetworkX interop and edge-list files."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, ring_graph
from repro.graph.io import (
    from_networkx,
    read_edge_list,
    to_networkx,
    write_edge_list,
)
from repro.sparse.csr import CSRMatrix


class TestNetworkx:
    def test_roundtrip_undirected(self):
        a = erdos_renyi(30, 4.0, seed=0)
        g = to_networkx(a)
        b = from_networkx(g)
        assert b.allclose(a)

    def test_roundtrip_directed(self):
        a = erdos_renyi(30, 4.0, seed=1, directed=True)
        g = to_networkx(a, directed=True)
        b = from_networkx(g)
        assert b.allclose(a)

    def test_weights_preserved(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 1, weight=2.5)
        g.add_edge(1, 2, weight=0.5)
        a = from_networkx(g, weight="weight")
        assert a.to_dense()[0, 1] == 2.5
        assert a.to_dense()[2, 1] == 0.5

    def test_networkx_metrics_agree(self):
        """Degrees computed by networkx match CSR degrees."""
        import networkx as nx

        a = ring_graph(12)
        g = to_networkx(a)
        nx_degrees = np.array([g.degree(v) for v in range(12)])
        np.testing.assert_array_equal(nx_degrees, a.row_degrees())

    def test_empty_graph(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(5))
        a = from_networkx(g)
        assert a.shape == (5, 5)
        assert a.nnz == 0


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        a = erdos_renyi(25, 4.0, seed=2)
        path = tmp_path / "graph.txt"
        write_edge_list(path, a)
        b = read_edge_list(path, symmetrize=False)
        assert b.allclose(a)

    def test_undirected_file_halves_lines(self, tmp_path):
        a = ring_graph(10)
        full = tmp_path / "full.txt"
        half = tmp_path / "half.txt"
        write_edge_list(full, a, directed=True)
        write_edge_list(half, a, directed=False)
        n_full = sum(1 for _ in open(full))
        n_half = sum(1 for _ in open(half))
        assert n_full == 2 * n_half
        # Symmetrized read of the half file reconstructs the graph.
        b = read_edge_list(half, symmetrize=True)
        assert b.allclose(a)

    def test_comments_and_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n0 1\n1 2 3.5\n")
        a = read_edge_list(path, symmetrize=False)
        assert a.shape == (3, 3)
        assert a.to_dense()[1, 2] == 3.5
        assert a.to_dense()[0, 1] == 1.0

    def test_header_written(self, tmp_path):
        a = ring_graph(4)
        path = tmp_path / "g.txt"
        write_edge_list(path, a, header="ring graph\nn=4")
        text = path.read_text()
        assert text.startswith("# ring graph\n# n=4\n")
        assert read_edge_list(path, symmetrize=False).allclose(a)

    def test_explicit_n_padding(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        a = read_edge_list(path, n=10)
        assert a.shape == (10, 10)

    def test_n_too_small_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 7\n")
        with pytest.raises(ValueError, match="smaller than"):
            read_edge_list(path, n=3)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        a = read_edge_list(path, n=4)
        assert a.shape == (4, 4) and a.nnz == 0

    def test_parallel_edges_sum(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.0\n0 1 2.0\n")
        a = read_edge_list(path, symmetrize=False)
        assert a.to_dense()[0, 1] == 3.0

    def test_loaded_graph_trains(self, tmp_path):
        """End to end: file -> normalise -> distributed training."""
        from repro.dist import make_algorithm
        from repro.graph.datasets import Dataset
        from repro.graph.normalize import gcn_normalize

        raw = erdos_renyi(48, 4.0, seed=3)
        path = tmp_path / "g.txt"
        write_edge_list(path, raw, directed=False)
        # Edge lists cannot express trailing isolated vertices: pass n.
        adj = gcn_normalize(read_edge_list(path, n=48))
        rng = np.random.default_rng(0)
        ds = Dataset(
            name="from-file", adjacency=adj,
            features=rng.standard_normal((48, 6)),
            labels=rng.integers(0, 3, 48), num_classes=3,
            train_mask=np.ones(48, dtype=bool),
        )
        algo = make_algorithm("2d", 4, ds, hidden=8, seed=0)
        hist = algo.fit(ds.features, ds.labels, epochs=5)
        assert hist.final_loss < hist.losses[0]
