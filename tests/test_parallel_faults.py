"""Elastic fault tolerance: the deterministic chaos matrix.

ISSUE 8's acceptance criteria: a declarative fault plan (kill / hang /
delay / drop / corrupt) injected into the resident worker pool must
trigger heartbeat detection, pool respawn, checkpoint restore, and a
resumed trajectory whose per-epoch losses are **bit-equal** and whose
ledger digest is **byte-identical** to the fault-free run -- on both the
shm and tcp transports, for the 1D ghost variant and the 2D family,
while ``fit`` stays one dispatch (recovery dispatches are counted
separately).  Also covered: the fault-plan grammar, the restart-budget
error path, optimizer/checkpoint round-trips through the virtual
backend, and the failure taxonomy.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.parallel import (
    RECOVERABLE_ERRORS,
    FaultPlan,
    FaultSpec,
    TransportError,
    WorkerDead,
    WorkerError,
    WorkerStalled,
    ledger_digest,
)
from repro.parallel.faults import parse_plan

EPOCHS = 3
HIDDEN = 8
P = 4
WORKERS = 2

# (label, algorithm, extra make_algorithm kwargs) -- the 1D ghost
# variant exercises the partition-aware exchange, 2D the SUMMA path.
CONFIGS = [
    ("1d-ghost", "1d", {"variant": "ghost", "partition": "multilevel"}),
    ("2d", "2d", {}),
]
TRANSPORTS = ["shm", "tcp"]


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=60, avg_degree=4, f=8, n_classes=3, seed=11)


@pytest.fixture(scope="module")
def references(ds):
    """Fault-free process-backend runs, one per (config, transport)."""
    out = {}
    for label, name, kw in CONFIGS:
        for transport in TRANSPORTS:
            algo = make_algorithm(name, P, ds, hidden=HIDDEN, seed=0,
                                  backend="process", workers=WORKERS,
                                  transport=transport, **kw)
            try:
                hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
                out[label, transport] = (hist.losses,
                                         ledger_digest(algo.rt.tracker))
            finally:
                algo.rt.close()
    return out


def run_faulted(ds, name, kw, transport, faults, max_restarts, tmp_path,
                checkpoint_every=1, epochs=EPOCHS, timeout=None):
    if timeout is not None:
        os.environ["REPRO_PARALLEL_TIMEOUT"] = str(timeout)
    try:
        algo = make_algorithm(name, P, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=WORKERS,
                              transport=transport, faults=faults,
                              max_restarts=max_restarts, **kw)
        try:
            fit_kw = {}
            if checkpoint_every:
                fit_kw = dict(
                    checkpoint_path=str(tmp_path / "ck.npz"),
                    checkpoint_every=checkpoint_every,
                )
            hist = algo.fit(ds.features, ds.labels, epochs=epochs, **fit_kw)
            return (hist.losses, ledger_digest(algo.rt.tracker),
                    algo.rt.backend_stats(workers=False))
        finally:
            algo.rt.close()
    finally:
        if timeout is not None:
            os.environ.pop("REPRO_PARALLEL_TIMEOUT", None)


# --------------------------------------------------------------------- #
# the chaos matrix: kill at every epoch boundary, both configs, both
# transports -- recovery must reproduce the fault-free run bit for bit.
# --------------------------------------------------------------------- #
class TestKillRecovery:
    @pytest.mark.parametrize("label,name,kw", CONFIGS,
                             ids=[c[0] for c in CONFIGS])
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("epoch", range(EPOCHS))
    def test_kill_at_epoch(self, ds, references, tmp_path, label, name,
                           kw, transport, epoch):
        losses, digest, stats = run_faulted(
            ds, name, kw, transport,
            faults=f"kill:worker=1,epoch={epoch},attempt=1",
            max_restarts=5, tmp_path=tmp_path)
        ref_losses, ref_digest = references[label, transport]
        assert losses == ref_losses
        assert digest == ref_digest
        assert stats["restarts"] >= 1
        # fit is still ONE regular dispatch; recovery traffic is
        # accounted separately.
        assert stats["fit_dispatches"] == 1
        assert stats["recovery_dispatches"] >= 2  # make_algo + re-fit
        assert stats["detect_seconds"] > 0.0

    def test_kill_without_checkpoint_restarts_from_scratch(
            self, ds, references, tmp_path):
        # No checkpoint file: recovery re-runs the whole deterministic
        # trajectory from epoch 0 and still matches bit for bit.
        losses, digest, stats = run_faulted(
            ds, "1d", {"variant": "ghost", "partition": "multilevel"}, "shm",
            faults="kill:worker=1,epoch=1,attempt=1", max_restarts=3,
            tmp_path=tmp_path, checkpoint_every=0)
        ref_losses, ref_digest = references["1d-ghost", "shm"]
        assert losses == ref_losses
        assert digest == ref_digest
        assert stats["restarts"] == 1


class TestOtherFaults:
    def test_hang_mid_exchange_trips_heartbeat(self, ds, references,
                                               tmp_path):
        losses, digest, stats = run_faulted(
            ds, "1d", {"variant": "ghost", "partition": "multilevel"}, "shm",
            faults="hang:worker=1,exchange=8,attempt=1", max_restarts=3,
            tmp_path=tmp_path, timeout=1.5)
        ref_losses, ref_digest = references["1d-ghost", "shm"]
        assert losses == ref_losses
        assert digest == ref_digest
        assert stats["restarts"] == 1

    def test_tcp_frame_delay_is_transient(self, ds, references, tmp_path):
        # A delayed frame slows the exchange but needs no recovery.
        losses, digest, stats = run_faulted(
            ds, "1d", {"variant": "ghost", "partition": "multilevel"}, "tcp",
            faults="delay:worker=1,exchange=5,seconds=0.4",
            max_restarts=3, tmp_path=tmp_path, checkpoint_every=0)
        ref_losses, ref_digest = references["1d-ghost", "tcp"]
        assert losses == ref_losses
        assert digest == ref_digest
        assert stats["restarts"] == 0

    def test_tcp_frame_drop_recovers(self, ds, references, tmp_path):
        losses, digest, stats = run_faulted(
            ds, "1d", {"variant": "ghost", "partition": "multilevel"}, "tcp",
            faults="drop:worker=1,exchange=5,attempt=1", max_restarts=3,
            tmp_path=tmp_path, timeout=1.5)
        ref_losses, ref_digest = references["1d-ghost", "tcp"]
        assert losses == ref_losses
        assert digest == ref_digest
        assert stats["restarts"] >= 1

    def test_tcp_frame_corrupt_recovers(self, ds, references, tmp_path):
        losses, digest, stats = run_faulted(
            ds, "2d", {}, "tcp",
            faults="corrupt:worker=1,exchange=6,attempt=1",
            max_restarts=3, tmp_path=tmp_path, timeout=5)
        ref_losses, ref_digest = references["2d", "tcp"]
        assert losses == ref_losses
        assert digest == ref_digest
        assert stats["restarts"] >= 1


class TestRestartBudget:
    def test_exhausted_budget_raises(self, ds, tmp_path):
        # The kill re-arms on every attempt (no attempt= key), so one
        # restart is never enough: the budget runs out and the original
        # failure surfaces.
        with pytest.raises(WorkerError, match="died"):
            run_faulted(ds, "1d", {}, "shm",
                        faults="kill:worker=1,epoch=1", max_restarts=1,
                        tmp_path=tmp_path, checkpoint_every=0)

    def test_zero_budget_disables_recovery(self, ds, tmp_path):
        with pytest.raises(WorkerDead):
            run_faulted(ds, "1d", {}, "shm",
                        faults="kill:worker=1,epoch=0,attempt=1",
                        max_restarts=0, tmp_path=tmp_path,
                        checkpoint_every=0)


# --------------------------------------------------------------------- #
# fault-plan grammar
# --------------------------------------------------------------------- #
class TestFaultGrammar:
    def test_parse_plan(self):
        specs = parse_plan("kill:worker=1,epoch=2; "
                           "delay:worker=0,exchange=3,seconds=0.5,attempt=2")
        assert specs == [
            FaultSpec(action="kill", worker=1, epoch=2),
            FaultSpec(action="delay", worker=0, exchange=3, seconds=0.5,
                      attempt=2),
        ]

    @pytest.mark.parametrize("text,match", [
        ("frobnicate:worker=0,epoch=1", "kill/hang/delay/drop/corrupt"),
        ("kill:epoch=1", "worker= is required"),
        ("kill:worker=0", "need epoch= or exchange="),
        ("drop:worker=0,epoch=1", "needs exchange="),
        ("corrupt:worker=0,epoch=1", "needs exchange="),
        ("kill", "expected one of"),
        ("kill:worker=zero,epoch=1", "bad fault spec"),
        (";;", "contains no specs"),
    ])
    def test_parse_rejects(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_plan(text)

    def test_for_worker_filters(self):
        text = "kill:worker=1,epoch=2; hang:worker=0,exchange=3"
        plan = FaultPlan.for_worker(1, text)
        assert [s.action for s in plan.specs] == ["kill"]
        assert FaultPlan.for_worker(2, text) is None
        assert FaultPlan.for_worker(0, None) is None

    def test_attempt_gating_and_fire_once(self):
        plan = FaultPlan.for_worker(0, "delay:worker=0,exchange=1,"
                                       "seconds=0.0,attempt=2")
        plan.attempt = 1
        plan.on_exchange(1)            # wrong attempt: must not fire
        assert not plan._fired
        plan.attempt = 2
        plan.on_exchange(1)
        assert len(plan._fired) == 1   # fired once...
        plan.on_exchange(1)
        assert len(plan._fired) == 1   # ...and never again

    def test_frame_fault_lookup(self):
        plan = FaultPlan.for_worker(0, "drop:worker=0,exchange=4")
        assert plan.frame_fault(3) is None
        spec = plan.frame_fault(4)
        assert spec is not None and spec.action == "drop"
        assert plan.frame_fault(4) is None  # consumed

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_FAULTS",
                           "hang:worker=0,exchange=9")
        plan = FaultPlan.for_worker(0)
        assert plan is not None and plan.specs[0].action == "hang"


# --------------------------------------------------------------------- #
# taxonomy + virtual-backend checkpoint/resume sanity
# --------------------------------------------------------------------- #
class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (WorkerDead, WorkerStalled, TransportError):
            assert issubclass(cls, WorkerError)
            assert cls in RECOVERABLE_ERRORS
        assert not issubclass(WorkerError, WorkerDead)

    def test_driver_rejects_bad_plan_early(self, ds):
        with pytest.raises(ValueError, match="bad fault spec"):
            make_algorithm("1d", P, ds, hidden=HIDDEN,
                           backend="process", workers=WORKERS,
                           faults="kill:worker=bogus")

    def test_virtual_backend_rejects_faults(self, ds):
        with pytest.raises(ValueError, match="backend='process'"):
            make_algorithm("1d", P, ds, hidden=HIDDEN,
                           faults="kill:worker=0,epoch=0")


class TestVirtualCheckpointResume:
    def test_resume_matches_straight_run(self, ds, tmp_path):
        ck = str(tmp_path / "virt.npz")
        full = make_algorithm("1d", P, ds, hidden=HIDDEN, seed=0)
        ref = full.fit(ds.features, ds.labels, epochs=6)

        first = make_algorithm("1d", P, ds, hidden=HIDDEN, seed=0)
        first.fit(ds.features, ds.labels, epochs=3,
                  checkpoint_path=ck, checkpoint_every=3)
        resumed = make_algorithm("1d", P, ds, hidden=HIDDEN, seed=0)
        hist = resumed.fit(ds.features, ds.labels, epochs=6,
                           checkpoint_path=ck, resume=True)
        assert hist.losses == ref.losses
        assert len(hist.epochs) == 6
        assert (ledger_digest(resumed.rt.tracker)
                == ledger_digest(full.rt.tracker))
