"""Step tracing: event capture, reports, and charge-neutrality."""

import numpy as np
import pytest

from repro.comm import VirtualRuntime
from repro.comm.trace import StepTracer
from repro.comm.tracker import Category, CommTracker
from repro.dist import make_algorithm
from repro.graph import make_synthetic


class TestEventCapture:
    def test_records_steps(self):
        t = CommTracker(3)
        tracer = StepTracer(t).install()
        with t.step_scope():
            t.charge(0, Category.SPMM, 1.0)
            t.charge(1, Category.SPMM, 3.0)
        with t.step_scope():
            t.charge(2, Category.DCOMM, 2.0)
        tracer.uninstall()
        assert len(tracer.events) == 2
        assert tracer.events[0].slowest_rank == 1
        assert tracer.events[0].seconds == pytest.approx(3.0)
        assert tracer.events[1].dominant_category == Category.DCOMM

    def test_empty_steps_skipped(self):
        t = CommTracker(2)
        tracer = StepTracer(t).install()
        with t.step_scope():
            pass
        assert tracer.events == []

    def test_nested_scopes_give_one_event(self):
        t = CommTracker(2)
        with StepTracer(t) as tracer:
            with t.step_scope():
                t.charge(0, Category.MISC, 1.0)
                with t.step_scope():
                    t.charge(1, Category.MISC, 2.0)
        assert len(tracer.events) == 1

    def test_tracing_does_not_change_charges(self):
        """Traced and untraced runs produce identical ledgers."""
        ds = make_synthetic(n=70, avg_degree=4, f=8, n_classes=3, seed=3)

        def run(trace):
            algo = make_algorithm("2d", 4, ds, hidden=8, seed=0)
            tracer = StepTracer(algo.rt.tracker) if trace else None
            if tracer:
                tracer.install()
            algo.setup(ds.features, ds.labels)
            st = algo.train_epoch(0)
            if tracer:
                tracer.uninstall()
            return st, tracer

        plain, _ = run(False)
        traced, tracer = run(True)
        assert traced.dcomm_bytes == plain.dcomm_bytes
        assert traced.modeled_seconds == pytest.approx(plain.modeled_seconds)
        # The trace's step total equals the epoch's wall clock.
        assert tracer.total_seconds() == pytest.approx(
            traced.modeled_seconds, rel=1e-9
        )

    def test_uninstall_restores_scope(self):
        t = CommTracker(1)
        tracer = StepTracer(t).install()
        tracer.uninstall()
        with t.step_scope():
            t.charge(0, Category.MISC, 1.0)
        assert tracer.events == []


class TestReports:
    def _traced_epoch(self):
        ds = make_synthetic(n=90, avg_degree=5, f=10, n_classes=3, seed=5)
        algo = make_algorithm("2d", 4, ds, hidden=8, seed=0)
        tracer = StepTracer(algo.rt.tracker).install()
        algo.setup(ds.features, ds.labels)
        algo.train_epoch(0)
        tracer.uninstall()
        return tracer

    def test_top_steps_sorted(self):
        tracer = self._traced_epoch()
        top = tracer.top_steps(5)
        assert len(top) == 5
        secs = [e.seconds for e in top]
        assert secs == sorted(secs, reverse=True)
        assert top[0].seconds == max(e.seconds for e in tracer.events)

    def test_category_totals_match_breakdown(self):
        tracer = self._traced_epoch()
        by_cat = tracer.seconds_by_category()
        wall = tracer.tracker.breakdown()
        for c, s in by_cat.items():
            assert s == pytest.approx(wall[c], rel=1e-9)

    def test_straggler_counts_cover_events(self):
        tracer = self._traced_epoch()
        counts = tracer.straggler_counts()
        assert sum(counts.values()) == len(tracer.events)

    def test_timeline_renders(self):
        tracer = self._traced_epoch()
        text = tracer.timeline(width=20, max_rows=10)
        assert "timeline:" in text
        assert "step" in text

    def test_empty_timeline(self):
        t = CommTracker(1)
        tracer = StepTracer(t)
        assert "no steps" in tracer.timeline()
