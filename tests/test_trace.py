"""Step tracing: event capture, reports, and charge-neutrality."""

import numpy as np
import pytest

from repro.comm import VirtualRuntime
from repro.comm.trace import StepTracer
from repro.comm.tracker import Category, CommTracker
from repro.dist import make_algorithm
from repro.graph import make_synthetic


class TestEventCapture:
    def test_records_steps(self):
        t = CommTracker(3)
        tracer = StepTracer(t).install()
        with t.step_scope():
            t.charge(0, Category.SPMM, 1.0)
            t.charge(1, Category.SPMM, 3.0)
        with t.step_scope():
            t.charge(2, Category.DCOMM, 2.0)
        tracer.uninstall()
        assert len(tracer.events) == 2
        assert tracer.events[0].slowest_rank == 1
        assert tracer.events[0].seconds == pytest.approx(3.0)
        assert tracer.events[1].dominant_category == Category.DCOMM

    def test_empty_steps_skipped(self):
        t = CommTracker(2)
        tracer = StepTracer(t).install()
        with t.step_scope():
            pass
        assert tracer.events == []

    def test_nested_scopes_give_one_event(self):
        t = CommTracker(2)
        with StepTracer(t) as tracer:
            with t.step_scope():
                t.charge(0, Category.MISC, 1.0)
                with t.step_scope():
                    t.charge(1, Category.MISC, 2.0)
        assert len(tracer.events) == 1

    def test_tracing_does_not_change_charges(self):
        """Traced and untraced runs produce identical ledgers."""
        ds = make_synthetic(n=70, avg_degree=4, f=8, n_classes=3, seed=3)

        def run(trace):
            algo = make_algorithm("2d", 4, ds, hidden=8, seed=0)
            tracer = StepTracer(algo.rt.tracker) if trace else None
            if tracer:
                tracer.install()
            algo.setup(ds.features, ds.labels)
            st = algo.train_epoch(0)
            if tracer:
                tracer.uninstall()
            return st, tracer

        plain, _ = run(False)
        traced, tracer = run(True)
        assert traced.dcomm_bytes == plain.dcomm_bytes
        assert traced.modeled_seconds == pytest.approx(plain.modeled_seconds)
        # The trace's step total equals the epoch's wall clock.
        assert tracer.total_seconds() == pytest.approx(
            traced.modeled_seconds, rel=1e-9
        )

    def test_uninstall_restores_scope(self):
        t = CommTracker(1)
        tracer = StepTracer(t).install()
        tracer.uninstall()
        with t.step_scope():
            t.charge(0, Category.MISC, 1.0)
        assert tracer.events == []


class TestReports:
    def _traced_epoch(self):
        ds = make_synthetic(n=90, avg_degree=5, f=10, n_classes=3, seed=5)
        algo = make_algorithm("2d", 4, ds, hidden=8, seed=0)
        tracer = StepTracer(algo.rt.tracker).install()
        algo.setup(ds.features, ds.labels)
        algo.train_epoch(0)
        tracer.uninstall()
        return tracer

    def test_top_steps_sorted(self):
        tracer = self._traced_epoch()
        top = tracer.top_steps(5)
        assert len(top) == 5
        secs = [e.seconds for e in top]
        assert secs == sorted(secs, reverse=True)
        assert top[0].seconds == max(e.seconds for e in tracer.events)

    def test_category_totals_match_breakdown(self):
        tracer = self._traced_epoch()
        by_cat = tracer.seconds_by_category()
        wall = tracer.tracker.breakdown()
        for c, s in by_cat.items():
            assert s == pytest.approx(wall[c], rel=1e-9)

    def test_straggler_counts_cover_events(self):
        tracer = self._traced_epoch()
        counts = tracer.straggler_counts()
        assert sum(counts.values()) == len(tracer.events)

    def test_timeline_renders(self):
        tracer = self._traced_epoch()
        text = tracer.timeline(width=20, max_rows=10)
        assert "timeline:" in text
        assert "step" in text

    def test_empty_timeline(self):
        t = CommTracker(1)
        tracer = StepTracer(t)
        assert "no steps" in tracer.timeline()


class TestEdgeCases:
    """The satellite-task edge cases: empty runs, single steps, failures."""

    def _one_step_tracer(self, seconds=2.5e-6):
        t = CommTracker(2)
        tracer = StepTracer(t).install()
        with t.step_scope():
            t.charge(0, Category.SPMM, seconds)
        tracer.uninstall()
        return tracer

    def test_empty_run_reports(self):
        t = CommTracker(3)
        tracer = StepTracer(t).install()
        tracer.uninstall()
        assert tracer.timeline() == "(no steps recorded)"
        assert tracer.top_steps() == []
        assert tracer.straggler_counts() == {}
        assert tracer.total_seconds() == 0.0
        assert tracer.seconds_by_category() == {}

    def test_single_step_timeline_fills_bar(self):
        tracer = self._one_step_tracer()
        text = tracer.timeline(width=24)
        assert "1 step," in text          # singular, one event
        assert "#" * 24 in text           # scaled against itself: full bar
        assert "more steps" not in text

    def test_single_step_reports(self):
        tracer = self._one_step_tracer()
        assert len(tracer.top_steps(10)) == 1
        assert tracer.top_steps(0) == []
        assert tracer.straggler_counts() == {0: 1}
        assert tracer.events[0].dominant_category == Category.SPMM

    def test_single_rank_steps_report_balanced_sentinel(self):
        # With one rank there is no one to straggle against: every step
        # must report -1, not rank 0.
        t = CommTracker(1)
        tracer = StepTracer(t).install()
        with t.step_scope():
            t.charge(0, Category.SPMM, 2.5e-6)
        tracer.uninstall()
        assert tracer.straggler_counts() == {-1: 1}
        assert tracer.events[0].balanced

    def test_timeline_rejects_degenerate_dimensions(self):
        tracer = self._one_step_tracer()
        with pytest.raises(ValueError, match="width"):
            tracer.timeline(width=0)
        with pytest.raises(ValueError, match="max_rows"):
            tracer.timeline(max_rows=0)

    def test_timeline_truncates_with_marker(self):
        t = CommTracker(1)
        tracer = StepTracer(t).install()
        for _ in range(5):
            with t.step_scope():
                t.charge(0, Category.MISC, 1e-6)
        tracer.uninstall()
        text = tracer.timeline(max_rows=2)
        assert "... 3 more steps" in text
        assert text.count("step ") == 2

    def test_top_steps_ranks_all_categories(self):
        t = CommTracker(2)
        tracer = StepTracer(t).install()
        for rank, cat, sec in (
            (0, Category.DCOMM, 3e-6),
            (1, Category.SPMM, 9e-6),
            (0, Category.MISC, 1e-6),
        ):
            with t.step_scope():
                t.charge(rank, cat, sec)
        tracer.uninstall()
        top = tracer.top_steps(2)
        assert [e.dominant_category for e in top] == [
            Category.SPMM, Category.DCOMM
        ]

    def test_straggler_counts_mark_balanced_steps(self):
        t = CommTracker(2)
        tracer = StepTracer(t).install()
        with t.step_scope():  # perfectly balanced: both ranks equal
            t.charge(0, Category.DCOMM, 5e-6)
            t.charge(1, Category.DCOMM, 5e-6)
        with t.step_scope():  # rank 1 straggles
            t.charge(0, Category.SPMM, 1e-6)
            t.charge(1, Category.SPMM, 8e-6)
        tracer.uninstall()
        assert tracer.straggler_counts() == {-1: 1, 1: 1}
        assert tracer.events[0].balanced
        assert not tracer.events[1].balanced

    def test_exception_mid_step_keeps_trace_and_ledger_aligned(self):
        """A failing step must itemise whatever it charged: the tracker's
        finally-block records the charges, so the tracer must too."""
        t = CommTracker(2)
        tracer = StepTracer(t).install()
        with pytest.raises(RuntimeError, match="boom"):
            with t.step_scope():
                t.charge(0, Category.DCOMM, 4e-6)
                raise RuntimeError("boom")
        tracer.uninstall()
        assert len(tracer.events) == 1
        assert tracer.total_seconds() == pytest.approx(t.wall_seconds())
