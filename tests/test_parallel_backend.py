"""The multiprocess execution backend vs. the virtual-runtime oracle.

The contract under test (ISSUE 4's acceptance criteria): for every
algorithm family, a :class:`ProcessBackend` run under frozen seeds
produces per-epoch losses equal to the :class:`VirtualRuntime` to
<= 1e-12 and a communication ledger that is **byte-for-byte identical**
-- same per-category byte/second totals per epoch, same per-rank rows,
same bulk-synchronous wall clock.  Sharded ownership (fewer workers than
ranks, including uneven splits) and pure SPMD (one rank per worker) are
both exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.tracker import Category
from repro.dist import make_algorithm, make_runtime_for
from repro.graph import make_synthetic
from repro.parallel import (
    ParallelRuntime,
    WorkerError,
    ledger_digest,
    owner_map,
)

EPOCHS = 3
HIDDEN = 8


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=60, avg_degree=4, f=8, n_classes=3, seed=11)


def run_virtual(ds, name, p, kw):
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0, **kw)
    hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
    lp = algo.predict()
    return algo, hist, lp


def run_process(ds, name, p, workers, kw):
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0,
                          backend="process", workers=workers, **kw)
    try:
        hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
        lp = algo.predict()
        tracker = algo.rt.tracker.snapshot()
    finally:
        algo.rt.close()
    return hist, lp, tracker


# Acceptance matrix: all four algorithms at P in {2, 4} (2D's P=2 via the
# rectangular grid; 3D needs a cubic mesh, covered at P=8), with sharded
# (W < P, even and uneven) and pure-SPMD (W == P) ownership.
MATRIX = [
    ("1d", 2, 2, {}),
    ("1d", 4, 2, {}),
    ("1d", 4, 3, {}),                       # uneven shards (2, 1, 1)
    ("1d", 4, 4, {"variant": "outer"}),
    ("1d", 4, 2, {"variant": "outer_sparse"}),
    ("1.5d", 2, 2, {"replication": 2}),
    ("1.5d", 4, 2, {"replication": 2}),
    ("1.5d", 4, 4, {"replication": 2}),
    ("2d", 2, 2, {"grid": (2, 1)}),
    ("2d", 4, 2, {}),
    ("2d", 4, 4, {}),
    ("3d", 8, 2, {}),
    ("3d", 8, 8, {}),
]


class TestCrossBackendEquality:
    @pytest.mark.parametrize("name,p,workers,kw", MATRIX)
    def test_losses_and_ledger_match_virtual(self, ds, name, p, workers, kw):
        v_algo, v_hist, v_lp = run_virtual(ds, name, p, kw)
        p_hist, p_lp, p_tracker = run_process(ds, name, p, workers, kw)

        # Losses: the acceptance bound is 1e-12; in practice the fixed
        # group-order reduction tree makes them bit-equal.
        for e_v, e_p in zip(v_hist.epochs, p_hist.epochs):
            assert abs(e_v.loss - e_p.loss) <= 1e-12
            assert abs(e_v.train_accuracy - e_p.train_accuracy) <= 1e-12
            # Ledger: byte-for-byte, including modeled wall seconds.
            assert e_v.bytes_by_category == e_p.bytes_by_category
            assert e_v.seconds_by_category == e_p.seconds_by_category
            assert e_v.max_rank_comm_bytes == e_p.max_rank_comm_bytes
        # Full per-rank ledger rows, exact.
        v_tracker = v_algo.rt.tracker
        for r in range(p):
            for c in Category.ALL:
                tv, tp = v_tracker.per_rank[r][c], p_tracker.per_rank[r][c]
                assert (tv.seconds, tv.bytes, tv.messages, tv.flops) == \
                       (tp.seconds, tp.bytes, tp.messages, tp.flops), (r, c)
        assert ledger_digest(v_tracker) == ledger_digest(p_tracker)
        # Inference output (assembled log-probabilities).
        np.testing.assert_allclose(v_lp, p_lp, rtol=0, atol=1e-12)


class TestProxySurface:
    def test_evaluate_and_log_probs(self, ds):
        algo = make_algorithm("1d", 2, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            algo.fit(ds.features, ds.labels, epochs=2)
            loss, acc = algo.evaluate(ds.labels)
            assert np.isfinite(loss) and 0.0 <= acc <= 1.0
            lp = algo.gather_log_probs()
            assert lp.shape == (ds.num_vertices, algo.widths[-1])
            np.testing.assert_allclose(np.exp(lp).sum(axis=1), 1.0,
                                       rtol=1e-9)
        finally:
            algo.rt.close()

    def test_verify_against_serial(self, ds):
        algo = make_algorithm("1d", 2, ds, hidden=HIDDEN, seed=3,
                              backend="process", workers=2)
        try:
            diff = algo.verify_against_serial(
                ds.features, ds.labels, epochs=2
            )
            assert diff < 1e-9
        finally:
            algo.rt.close()

    def test_worker_error_propagates(self, ds):
        algo = make_algorithm("1d", 2, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            with pytest.raises(WorkerError, match="features shape"):
                algo.setup(np.zeros((3, 3)), ds.labels)
        finally:
            algo.rt.close()

    def test_one_algorithm_per_pool(self, ds):
        """A second build on a live pool would hijack the first proxy's
        worker-side model -- it must refuse instead."""
        algo = make_algorithm("1d", 2, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            with pytest.raises(RuntimeError, match="already drives"):
                algo.rt.make_algorithm("1d", ds.adjacency, algo.widths,
                                       seed=7)
        finally:
            algo.rt.close()

    def test_runtime_describe_and_close_idempotent(self, ds):
        rt = make_runtime_for("2d", 4, backend="process", workers=2)
        assert isinstance(rt, ParallelRuntime)
        assert "2 workers" in rt.describe()
        rt.close()
        rt.close()  # idempotent, never started is fine too


class TestRegistryValidation:
    def test_unknown_backend_rejected(self, ds):
        with pytest.raises(ValueError, match="unknown backend"):
            make_runtime_for("1d", 2, backend="cuda")

    def test_workers_require_process_backend(self):
        with pytest.raises(ValueError, match="workers"):
            make_runtime_for("1d", 2, workers=2)

    def test_owner_map_blocks(self):
        assert owner_map(4, 2) == (0, 0, 1, 1)
        assert owner_map(4, 3) == (0, 0, 1, 2)
        assert owner_map(3, 3) == (0, 1, 2)
        with pytest.raises(ValueError):
            owner_map(2, 3)
        with pytest.raises(ValueError):
            owner_map(2, 0)

    def test_ledger_digest_sensitivity(self):
        from repro.comm.tracker import CommTracker

        a, b = CommTracker(2), CommTracker(2)
        assert ledger_digest(a) == ledger_digest(b)
        a.charge(0, Category.DCOMM, 1.0, nbytes=8)
        assert ledger_digest(a) != ledger_digest(b)
        b.charge(0, Category.DCOMM, 1.0, nbytes=8)
        assert ledger_digest(a) == ledger_digest(b)
        assert ledger_digest(a, 1.5) != ledger_digest(a, 2.5)


class TestResidentDispatch:
    """ISSUE 6's tentpole contract: the hot path is one dispatch per
    ``fit`` -- independent of epochs and collective count -- and the
    remaining driver paths can fuse into single wakeups."""

    def test_fit_is_one_dispatch_regardless_of_epochs(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            c0 = algo.rt.backend_stats(workers=False)
            algo.fit(ds.features, ds.labels, epochs=2)
            c1 = algo.rt.backend_stats(workers=False)
            algo.fit(ds.features, ds.labels, epochs=6)
            c2 = algo.rt.backend_stats(workers=False)
        finally:
            algo.rt.close()
        # O(1) in epochs: tripling the epochs adds exactly the same
        # single dispatch (and single digest check).
        assert c1["dispatches"] - c0["dispatches"] == 1
        assert c2["dispatches"] - c1["dispatches"] == 1
        assert c1["fit_dispatches"] - c0["fit_dispatches"] == 1
        assert c2["fit_dispatches"] - c1["fit_dispatches"] == 1
        assert c1["digest_checks"] - c0["digest_checks"] == 1
        assert c2["digest_checks"] - c1["digest_checks"] == 1

    def test_resident_fit_matches_per_epoch_commands(self, ds):
        """The resident loop and the legacy per-epoch command path are
        the same program: identical losses and ledger digests."""
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
            resident_digest = ledger_digest(algo.rt.tracker)
        finally:
            algo.rt.close()
        algo2 = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                               backend="process", workers=2)
        try:
            algo2.setup(ds.features, ds.labels)
            losses = [algo2.train_epoch(e).loss for e in range(EPOCHS)]
            stepped_digest = ledger_digest(algo2.rt.tracker)
        finally:
            algo2.rt.close()
        assert [e.loss for e in hist.epochs] == losses
        assert resident_digest == stepped_digest

    def test_fused_batch_is_one_dispatch(self, ds):
        algo = make_algorithm("1d", 2, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            algo.fit(ds.features, ds.labels, epochs=1)
            c0 = algo.rt.backend_stats(workers=False)
            lp, weights = algo.rt._command_batch(
                [("predict", None), ("weights", None)]
            )
            c1 = algo.rt.backend_stats(workers=False)
            np.testing.assert_allclose(lp, algo.predict(), rtol=0,
                                       atol=0)
            assert len(weights) == len(algo.widths) - 1
        finally:
            algo.rt.close()
        assert c1["dispatches"] - c0["dispatches"] == 1
        assert c1["commands"] - c0["commands"] == 2
        assert c1["fused_batches"] - c0["fused_batches"] == 1
        assert c1["digest_checks"] - c0["digest_checks"] == 1

    def test_stats_surface(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            algo.fit(ds.features, ds.labels, epochs=2)
            stats = algo.rt.backend_stats()
        finally:
            algo.rt.close()
        assert stats["transport"] == "shm"
        assert stats["workers"] == 2
        assert stats["channel_bytes"] > 0
        assert stats["exchanges"] > 0
        assert stats["digests_computed"] >= 2  # one per worker per fit
        assert len(stats["per_worker"]) == 2
        # Workers run the same SPMD program: same exchange count.
        assert len({d["exchanges"] for d in stats["per_worker"]}) == 1


class TestDigestModes:
    def test_paranoid_mismatch_names_first_diverging_item(self, ds,
                                                          monkeypatch):
        """Fault injection: skew one worker's ledger, then fit under
        REPRO_PARALLEL_PARANOID=1 -- the per-epoch digests must trip and
        name the first diverging epoch."""
        monkeypatch.setenv("REPRO_PARALLEL_PARANOID", "1")
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            algo.rt._command("debug_skew", 0)  # worker 0 only
            with pytest.raises(RuntimeError,
                               match=r"diverged.*stream item 0"):
                algo.fit(ds.features, ds.labels, epochs=2)
        finally:
            algo.rt.close()

    def test_default_mode_still_catches_divergence(self, ds):
        """Without paranoid mode the check is batched (one digest per
        fit) but a diverged ledger still fails the dispatch."""
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            algo.rt._command("debug_skew", 1)  # worker 1 only
            with pytest.raises(RuntimeError, match="diverged"):
                algo.fit(ds.features, ds.labels, epochs=2)
        finally:
            algo.rt.close()

    def test_paranoid_computes_per_epoch_digests(self, ds, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_PARANOID", "1")
        algo = make_algorithm("1d", 2, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            algo.fit(ds.features, ds.labels, epochs=3)
            stats = algo.rt.backend_stats()
        finally:
            algo.rt.close()
        # 3 per-epoch digests + 1 batched final, per worker.
        assert stats["digests_computed"] >= 8


class TestLiveness:
    def test_dead_worker_names_worker_and_ranks(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            algo.setup(ds.features, ds.labels)
            algo.rt._backend.procs[1].kill()
            with pytest.raises(WorkerError,
                               match=r"died.*worker 1 \(ranks \[2, 3\]\)"):
                algo.train_epoch(0)
        finally:
            algo.rt.close()

    def test_no_progress_timeout_names_stuck_worker(self, ds):
        """A worker that stops touching the heartbeat fails the command
        after the no-progress window, naming the stuck worker."""
        rt = ParallelRuntime.make_1d(4, workers=2, timeout=1.5)
        algo = rt.make_algorithm("1d", ds.adjacency,
                                 ds.layer_widths(hidden=HIDDEN), seed=0)
        try:
            with pytest.raises(WorkerError,
                               match=r"no progress.*worker 1 "
                                     r"\(ranks \[2, 3\]\)"):
                rt._command("debug_hang", 1)
        finally:
            rt.close()

    def test_slow_but_alive_worker_is_not_killed(self, ds):
        """Progress-based semantics: a fit whose wall clock exceeds the
        window survives as long as the heartbeat keeps moving (each
        epoch and each exchange touches it)."""
        rt = ParallelRuntime.make_1d(4, workers=2, timeout=1.5)
        algo = rt.make_algorithm("1d", ds.adjacency,
                                 ds.layer_widths(hidden=HIDDEN), seed=0)
        try:
            # ~60 epochs of real work: comfortably longer than 1.5s on
            # the CI host is not guaranteed, but the point is the
            # command completes regardless of its wall clock.
            hist = algo.fit(ds.features, ds.labels, epochs=60)
            assert len(hist.epochs) == 60
        finally:
            rt.close()
