"""The TCP transport vs. the virtual-runtime oracle.

ISSUE 6's acceptance criteria for the socket channel: the exact same
tagged ``(group, seq)`` exchange semantics as the shm transport, so for
every algorithm family a ``--transport tcp`` run on loopback produces
per-epoch losses **bit-equal** to the virtual runtime and a ledger that
is byte-for-byte identical -- including the ghost variant over a
``Distribution`` partition.  Also covered: the channel primitive itself
(threads in one process, out-of-order stash, heartbeat-extended waits)
and the ``REPRO_PARALLEL_HOSTS`` endpoint parser.
"""

from __future__ import annotations

import queue
import threading

import numpy as np
import pytest

from repro.comm.tracker import Category
from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.parallel import ChannelTimeout, TcpChannel, ledger_digest
from repro.parallel.tcp import parse_hosts

EPOCHS = 3
HIDDEN = 8


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=60, avg_degree=4, f=8, n_classes=3, seed=11)


def run_virtual(ds, name, p, kw):
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0, **kw)
    hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
    lp = algo.predict()
    return algo, hist, lp


def run_tcp(ds, name, p, workers, kw):
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0,
                          backend="process", workers=workers,
                          transport="tcp", **kw)
    try:
        hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
        lp = algo.predict()
        tracker = algo.rt.tracker.snapshot()
        stats = algo.rt.backend_stats()
    finally:
        algo.rt.close()
    return hist, lp, tracker, stats


# All four algorithm families at P=4 (3D needs a cubic mesh: P=8), both
# sharded (W < P) and pure-SPMD (W == P) ownership, over sockets.
TCP_MATRIX = [
    ("1d", 4, 2, {}),
    ("1d", 4, 4, {"variant": "outer"}),
    ("1.5d", 4, 2, {"replication": 2}),
    ("2d", 4, 4, {}),
    ("3d", 8, 2, {}),
]


class TestTcpCrossBackendEquality:
    @pytest.mark.parametrize("name,p,workers,kw", TCP_MATRIX)
    def test_losses_and_ledger_match_virtual(self, ds, name, p, workers,
                                             kw):
        v_algo, v_hist, v_lp = run_virtual(ds, name, p, kw)
        p_hist, p_lp, p_tracker, stats = run_tcp(ds, name, p, workers, kw)

        for e_v, e_p in zip(v_hist.epochs, p_hist.epochs):
            assert e_v.loss == e_p.loss
            assert e_v.train_accuracy == e_p.train_accuracy
            assert e_v.bytes_by_category == e_p.bytes_by_category
            assert e_v.seconds_by_category == e_p.seconds_by_category
            assert e_v.max_rank_comm_bytes == e_p.max_rank_comm_bytes
        v_tracker = v_algo.rt.tracker
        for r in range(p):
            for c in Category.ALL:
                tv, tp = v_tracker.per_rank[r][c], p_tracker.per_rank[r][c]
                assert (tv.seconds, tv.bytes, tv.messages, tv.flops) == \
                       (tp.seconds, tp.bytes, tp.messages, tp.flops), (r, c)
        assert ledger_digest(v_tracker) == ledger_digest(p_tracker)
        # Inference read-out: same bound as the shm oracle (SUMMA
        # partial-sum order differs from the serial assembly).
        np.testing.assert_allclose(v_lp, p_lp, rtol=0, atol=1e-12)
        # The frames really crossed sockets.
        assert stats["transport"] == "tcp"
        assert stats["channel_bytes"] > 0
        assert stats["exchanges"] > 0

    def test_ghost_multilevel_partition_over_tcp(self, ds):
        """The partition-aware ghost variant -- the hardest ledger to
        reproduce -- stays byte-identical across the socket fabric."""
        kw = {"variant": "ghost", "partition": "multilevel"}
        v_algo, v_hist, v_lp = run_virtual(ds, "1d", 4, kw)
        p_hist, p_lp, p_tracker, _ = run_tcp(ds, "1d", 4, 2, kw)
        for e_v, e_p in zip(v_hist.epochs, p_hist.epochs):
            assert e_v.loss == e_p.loss
            assert e_v.bytes_by_category == e_p.bytes_by_category
            assert e_v.seconds_by_category == e_p.seconds_by_category
        assert ledger_digest(v_algo.rt.tracker) == ledger_digest(p_tracker)
        np.testing.assert_allclose(v_lp, p_lp, rtol=0, atol=1e-12)


class TestTcpChannelPrimitive:
    """The socket exchange itself, driven by two threads in-process."""

    def _pair(self, timeout=10.0, heartbeat=None):
        inboxes = [queue.Queue(), queue.Queue()]
        chans = [None, None]
        errs = []

        def build(wid):
            try:
                chans[wid] = TcpChannel(wid, 2, inboxes=inboxes,
                                        timeout=timeout,
                                        heartbeat=heartbeat)
            except Exception as exc:  # pragma: no cover - surfaced below
                errs.append(exc)

        ts = [threading.Thread(target=build, args=(w,)) for w in (0, 1)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(timeout=15)
        assert not errs, errs
        return chans

    def test_roundtrip_and_out_of_order_stash(self):
        chans = self._pair()
        results = {}
        errs = []

        def run(wid):
            ch = chans[wid]
            try:
                if wid == 0:
                    # Post g1 then g2 ...
                    ch.exchange("g1", [("a", np.arange(4.0))], [1], [])
                    ch.exchange("g2", [("b", np.ones(3))], [1], [])
                    got = ch.exchange("g3", [("c", None)], [1], [1])
                    results[wid] = got
                else:
                    # ... but consume g2 before g1: the stash must hold
                    # the early frame until its tag is wanted.
                    g2 = ch.exchange("g2", [], [], [0])
                    g1 = ch.exchange("g1", [], [], [0])
                    got = ch.exchange("g3", [("d", np.zeros(2))], [0], [0])
                    results[wid] = (g1, g2, got)
            except Exception as exc:  # pragma: no cover
                errs.append(exc)

        ts = [threading.Thread(target=run, args=(w,)) for w in (0, 1)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(timeout=15)
        for ch in chans:
            ch.close()
        assert not errs, errs
        g1, g2, got1 = results[1]
        np.testing.assert_array_equal(g1[0][0][1], np.arange(4.0))
        np.testing.assert_array_equal(g2[0][0][1], np.ones(3))
        key, payload = results[0][1][0]
        assert key == "d"
        np.testing.assert_array_equal(payload, np.zeros(2))
        assert got1[0][0] == ("c", None)
        assert chans[0].bytes_sent > 0 and chans[0].nexchanges == 3

    def test_no_progress_timeout_names_peer(self):
        chans = self._pair(timeout=0.6)
        try:
            with pytest.raises(ChannelTimeout, match="no progress from "
                                                     "worker 1"):
                chans[0].exchange("g", [], [], [1])
        finally:
            for ch in chans:
                ch.close()

    def test_heartbeat_extends_the_wait(self):
        """A peer that keeps making progress is never timed out, even
        when one wait exceeds the window."""
        hb = [0, 0]
        chans = self._pair(timeout=0.6, heartbeat=hb)
        stop = threading.Event()

        def beat():
            while not stop.is_set():
                hb[1] += 1
                stop.wait(0.1)

        def late_send():
            stop.wait(1.5)  # well past the 0.6s window
            chans[1].exchange("g", [("x", np.arange(2.0))], [0], [])

        beater = threading.Thread(target=beat, daemon=True)
        sender = threading.Thread(target=late_send)
        beater.start()
        sender.start()
        try:
            got = chans[0].exchange("g", [], [], [1])
            np.testing.assert_array_equal(got[1][0][1], np.arange(2.0))
        finally:
            stop.set()
            sender.join(timeout=5)
            beater.join(timeout=5)
            for ch in chans:
                ch.close()


class TestHostsParsing:
    def test_parse_hosts(self):
        assert parse_hosts("10.0.0.1:9000, 10.0.0.2:9001") == [
            ("10.0.0.1", 9000), ("10.0.0.2", 9001)]
        assert parse_hosts("[::1]:80,localhost:81") == [
            ("::1", 80), ("localhost", 81)]

    def test_parse_hosts_rejects_garbage(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_hosts("nocolon")
        with pytest.raises(ValueError, match="empty"):
            parse_hosts(" , ")

    def test_parse_hosts_rejects_bad_ports(self):
        with pytest.raises(ValueError, match="port"):
            parse_hosts("a:0")
        with pytest.raises(ValueError, match="port"):
            parse_hosts("a:70000")
        with pytest.raises(ValueError, match="host:port"):
            parse_hosts("a:http")

    def test_parse_hosts_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_hosts("10.0.0.1:9000,10.0.0.1:9000")
        # Same host, different ports: fine (single-machine layouts).
        assert parse_hosts("h:1,h:2") == [("h", 1), ("h", 2)]

    def test_parse_hosts_enforces_worker_count(self):
        assert parse_hosts("h:1,h:2", nworkers=2) == [("h", 1), ("h", 2)]
        with pytest.raises(ValueError, match="need exactly one per worker"):
            parse_hosts("h:1,h:2", nworkers=3)
        with pytest.raises(ValueError, match="need exactly one per worker"):
            parse_hosts("h:1,h:2,h:3", nworkers=2)

    def test_hosts_rendezvous_on_loopback(self, ds, monkeypatch):
        """The static REPRO_PARALLEL_HOSTS path (how multi-host runs
        rendezvous), exercised with both endpoints on loopback."""
        import socket

        ports = []
        socks = []
        for _ in range(2):
            s = socket.socket()
            s.bind(("127.0.0.1", 0))
            ports.append(s.getsockname()[1])
            socks.append(s)
        for s in socks:
            s.close()
        monkeypatch.setenv(
            "REPRO_PARALLEL_HOSTS",
            ",".join(f"127.0.0.1:{port}" for port in ports),
        )
        v_algo, v_hist, v_lp = run_virtual(ds, "1d", 2, {})
        algo = make_algorithm("1d", 2, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2,
                              transport="tcp")
        try:
            hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
            lp = algo.predict()
            assert [e.loss for e in hist.epochs] == \
                   [e.loss for e in v_hist.epochs]
            assert ledger_digest(algo.rt.tracker) == \
                   ledger_digest(v_algo.rt.tracker)
            np.testing.assert_allclose(v_lp, lp, rtol=0, atol=1e-12)
        finally:
            algo.rt.close()
