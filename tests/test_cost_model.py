"""Alpha-beta collective cost formulas."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import cost_model as cm
from repro.config import SUMMIT, ZERO_COST, MachineProfile

FLAT = MachineProfile(
    name="flat",
    alpha=1e-6,
    beta=1e-9,
    beta_intranode=1e-9,
    beta_intersocket=1e-9,
    alpha_intranode=1e-6,
)


class TestP2P:
    def test_alpha_beta_formula(self):
        cost = cm.p2p_cost(FLAT, 1000, span=64)
        assert cost.seconds == pytest.approx(1e-6 + 1e-9 * 1000)
        assert cost.bytes_critical == 1000
        assert cost.messages == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            cm.p2p_cost(FLAT, -1)


class TestBroadcast:
    def test_tree_latency_factor(self):
        cost = cm.broadcast_cost(FLAT, 1 << 20, 8)
        # lg 8 = 3 alpha terms, one bandwidth term.
        assert cost.seconds == pytest.approx(3 * 1e-6 + 1e-9 * (1 << 20))
        assert cost.messages == 3

    def test_pipelined_drops_lg_factor(self):
        plain = cm.broadcast_cost(FLAT, 1 << 20, 16)
        piped = cm.broadcast_cost(FLAT, 1 << 20, 16, pipelined=True)
        assert piped.messages == 1
        assert piped.seconds < plain.seconds

    def test_single_rank_is_free(self):
        assert cm.broadcast_cost(FLAT, 100, 1).seconds == 0.0

    def test_zero_bytes_is_free(self):
        assert cm.broadcast_cost(FLAT, 0, 8).seconds == 0.0

    def test_wire_traffic_counts_all_receivers(self):
        cost = cm.broadcast_cost(FLAT, 100, 5)
        assert cost.bytes_on_wire == 100 * 4  # 4 receivers

    def test_span_selects_internode_tier(self):
        # A 4-rank group inside a 64-rank job crosses node boundaries.
        small_span = cm.broadcast_cost(SUMMIT, 1 << 20, 4)
        big_span = cm.broadcast_cost(SUMMIT, 1 << 20, 4, span=64)
        assert big_span.seconds > small_span.seconds


class TestReductions:
    def test_allgather_bandwidth_term(self):
        p, m = 8, 1 << 20
        cost = cm.allgather_cost(FLAT, m, p)
        assert cost.seconds == pytest.approx(3 * 1e-6 + 1e-9 * m * (p - 1) / p)

    def test_reduce_scatter_matches_allgather_bandwidth(self):
        p, m = 16, 1 << 18
        ag = cm.allgather_cost(FLAT, m, p)
        rs = cm.reduce_scatter_cost(FLAT, m, p)
        assert rs.seconds == pytest.approx(ag.seconds)

    def test_allreduce_is_rs_plus_ag(self):
        p, m = 8, 4096
        ar = cm.allreduce_cost(FLAT, m, p)
        rs = cm.reduce_scatter_cost(FLAT, m, p)
        ag = cm.allgather_cost(FLAT, m, p)
        assert ar.seconds == pytest.approx(rs.seconds + ag.seconds)
        assert ar.messages == rs.messages + ag.messages

    def test_reduce_tree(self):
        cost = cm.reduce_cost(FLAT, 1024, 4)
        assert cost.seconds == pytest.approx(2 * 1e-6 + 1e-9 * 1024)

    def test_alltoall_pairwise_latency(self):
        cost = cm.alltoall_cost(FLAT, 1 << 20, 8)
        assert cost.messages == 7

    def test_gather_scatter_symmetry(self):
        g = cm.gather_cost(FLAT, 1 << 16, 8)
        s = cm.scatter_cost(FLAT, 1 << 16, 8)
        assert g.seconds == pytest.approx(s.seconds)


class TestCostAlgebra:
    def test_cost_addition(self):
        a = cm.CollectiveCost(1.0, 10, 5, 1)
        b = cm.CollectiveCost(2.0, 20, 10, 2)
        c = a + b
        assert (c.seconds, c.bytes_on_wire, c.bytes_critical, c.messages) == (
            3.0, 30, 15, 3,
        )

    def test_zero_cost_profile_all_free(self):
        for fn in (cm.broadcast_cost, cm.reduce_cost):
            assert fn(ZERO_COST, 1 << 20, 16).seconds == 0.0
        assert cm.allreduce_cost(ZERO_COST, 1 << 20, 16).seconds == 0.0


class TestCostProperties:
    @given(
        nbytes=st.integers(min_value=1, max_value=1 << 26),
        p=st.integers(min_value=2, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_costs_positive_and_monotone_in_bytes(self, nbytes, p):
        c1 = cm.broadcast_cost(FLAT, nbytes, p)
        c2 = cm.broadcast_cost(FLAT, nbytes + 1024, p)
        assert c1.seconds > 0
        assert c2.seconds >= c1.seconds

    @given(
        nbytes=st.integers(min_value=1024, max_value=1 << 24),
        p=st.integers(min_value=2, max_value=256),
    )
    @settings(max_examples=50, deadline=None)
    def test_latency_grows_logarithmically(self, nbytes, p):
        cost = cm.broadcast_cost(FLAT, nbytes, p)
        assert cost.messages == math.ceil(math.log2(p))

    @given(p=st.integers(min_value=2, max_value=128))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_double_of_reduce_scatter_bandwidth(self, p):
        m = 1 << 20
        ar = cm.allreduce_cost(FLAT, m, p)
        rs = cm.reduce_scatter_cost(FLAT, m, p)
        assert ar.bytes_critical == 2 * rs.bytes_critical


class TestClosedFormTable:
    """Every collective formula vs the module docstring's cost table.

    The docstring promises, for p ranks and m bytes (alpha = per-message
    latency, beta = seconds/byte, lg = ceil(log2)):

        broadcast        lg p * a + b m   (pipelined: 1 * a + b m)
        reduce           lg p * a + b m
        all-gather       lg p * a + b m (p-1)/p
        reduce-scatter   lg p * a + b m (p-1)/p
        all-reduce       2 lg p * a + 2 b m (p-1)/p
        all-to-all       (p-1) * a + b m (p-1)/p

    Checked at p in {2, 4, 8, 64} on a flat one-tier profile so the
    formula is the whole story.
    """

    ALPHA = 1e-6
    BETA = 1e-9
    M = 1 << 20

    def _lg(self, p):
        return math.ceil(math.log2(p))

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_broadcast_tree(self, p):
        cost = cm.broadcast_cost(FLAT, self.M, p)
        assert cost.seconds == pytest.approx(
            self._lg(p) * self.ALPHA + self.BETA * self.M
        )
        assert cost.messages == self._lg(p)

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_broadcast_pipelined_drops_lg(self, p):
        piped = cm.broadcast_cost(FLAT, self.M, p, pipelined=True)
        tree = cm.broadcast_cost(FLAT, self.M, p)
        assert piped.seconds == pytest.approx(
            self.ALPHA + self.BETA * self.M
        )
        assert piped.messages == 1
        # Same bandwidth term; the difference is exactly (lg p - 1) alphas.
        assert tree.seconds - piped.seconds == pytest.approx(
            (self._lg(p) - 1) * self.ALPHA
        )

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_reduce(self, p):
        cost = cm.reduce_cost(FLAT, self.M, p)
        assert cost.seconds == pytest.approx(
            self._lg(p) * self.ALPHA + self.BETA * self.M
        )

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_allgather(self, p):
        cost = cm.allgather_cost(FLAT, self.M, p)
        assert cost.seconds == pytest.approx(
            self._lg(p) * self.ALPHA + self.BETA * self.M * (p - 1) / p
        )
        assert cost.bytes_critical == int(self.M * (p - 1) / p)

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_reduce_scatter(self, p):
        cost = cm.reduce_scatter_cost(FLAT, self.M, p)
        assert cost.seconds == pytest.approx(
            self._lg(p) * self.ALPHA + self.BETA * self.M * (p - 1) / p
        )

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_allreduce(self, p):
        cost = cm.allreduce_cost(FLAT, self.M, p)
        assert cost.seconds == pytest.approx(
            2 * self._lg(p) * self.ALPHA
            + 2 * self.BETA * self.M * (p - 1) / p
        )
        assert cost.messages == 2 * self._lg(p)

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_alltoall(self, p):
        cost = cm.alltoall_cost(FLAT, self.M, p)
        assert cost.seconds == pytest.approx(
            (p - 1) * self.ALPHA + self.BETA * self.M * (p - 1) / p
        )
        assert cost.messages == p - 1

    @pytest.mark.parametrize("p", [2, 4, 8, 64])
    def test_allreduce_is_rs_plus_ag(self, p):
        """The docstring's derivation: all-reduce = reduce-scatter +
        all-gather (Thakur et al.), term by term."""
        ar = cm.allreduce_cost(FLAT, self.M, p)
        rs = cm.reduce_scatter_cost(FLAT, self.M, p)
        ag = cm.allgather_cost(FLAT, self.M, p)
        assert ar.seconds == pytest.approx(rs.seconds + ag.seconds)
        assert ar.bytes_critical == rs.bytes_critical + ag.bytes_critical
        assert ar.messages == rs.messages + ag.messages

    def test_congestion_extension_default_off(self):
        """beta_effective == beta_for_span on congestion-free profiles,
        so the docstring table is unchanged for them."""
        for span in (2, 8, 64, 4096):
            assert FLAT.beta_effective(span) == FLAT.beta_for_span(span)

    def test_congestion_scales_bandwidth_term_only(self):
        congested = MachineProfile(
            name="congested",
            alpha=self.ALPHA,
            beta=self.BETA,
            beta_intranode=self.BETA,
            beta_intersocket=self.BETA,
            alpha_intranode=self.ALPHA,
            gpus_per_node=4,
            congestion_per_doubling=0.5,
        )
        p = 64
        flatc = cm.broadcast_cost(FLAT, self.M, p)
        cong = cm.broadcast_cost(congested, self.M, p)
        nodes = math.ceil(p / 4)
        factor = 1 + 0.5 * math.log2(nodes)
        expect_bw = self.BETA * self.M * factor
        assert cong.seconds == pytest.approx(
            self._lg(p) * self.ALPHA + expect_bw
        )
        # Latency term untouched.
        assert cong.messages == flatc.messages
