"""Comm plans, fast-path collectives, and the pre-optimization oracle.

Three layers of insurance around the executed-runtime fast path
(copy-on-write collectives + :class:`repro.comm.plan.CommPlan` + cached
charge replay + workspace reuse):

1. **CommPlan semantics** -- group interning still validates, splits
   match ``numpy.array_split``, workspaces are stable, and steady-state
   epochs are pure cache hits;
2. **ledger identity** -- per-epoch bytes per category, the max-per-rank
   bytes, and the modeled seconds are *byte-for-byte identical* to
   constants captured from the pre-optimization tree (commit 3245033)
   for all four algorithms at P in {4, 8, 16} (3D: its cubic 8/27), and
   still match the PR 2 schedule oracle;
3. **numerics** -- the executed losses equal the pre-optimization losses
   exactly under frozen seeds, and every algorithm still verifies
   against the serial reference.
"""

import numpy as np
import pytest

from repro.comm import VirtualRuntime
from repro.comm.plan import CommPlan
from repro.comm.tracker import Category, CommTracker
from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.sparse.distribute import block_ranges

# ---------------------------------------------------------------------- #
# The frozen workload every oracle assertion runs against.
# ---------------------------------------------------------------------- #
GRAPH = dict(n=192, avg_degree=8, f=12, n_classes=4, seed=7)
HIDDEN = 8
SEED = 3

#: (algorithm, P, kwargs) configurations covering every family at
#: P in {4, 8, 16} (3D at its feasible cubes 8 and 27).
CONFIGS = [
    ("1d", 4, {}),
    ("1d", 8, {}),
    ("1d", 16, {}),
    ("1.5d", 4, {"replication": 2}),
    ("1.5d", 8, {"replication": 4}),
    ("1.5d", 16, {"replication": 4}),
    ("2d", 4, {}),
    ("2d", 8, {"grid": (4, 2)}),
    ("2d", 16, {}),
    ("3d", 8, {}),
    ("3d", 27, {}),
]

#: Per-epoch ledger deltas and losses recorded by running THIS workload
#: on the pre-optimization tree (commit 3245033, before copy-on-write
#: collectives / comm plans / workspace reuse existed).  The fast path
#: must reproduce every number exactly.
PRE_OPT_ORACLE = {
    ("1d", 4): dict(dcomm=230496, scomm=0, trpose=0, max_rank=57624,
                    seconds=0.00022010344507518794,
                    loss1=1.4010554851746766),
    ("1d", 8): dict(dcomm=537824, scomm=0, trpose=0, max_rank=67228,
                    seconds=0.0002898591201307616,
                    loss1=1.4010554851746768),
    ("1d", 16): dict(dcomm=1152480, scomm=0, trpose=0, max_rank=72030,
                     seconds=0.0003168384495063747,
                     loss1=1.4010554851746768),
    ("1.5d", 4): dict(dcomm=301120, scomm=0, trpose=0, max_rank=75280,
                      seconds=0.00022308479015037598,
                      loss1=1.4010554851746768),
    ("1.5d", 8): dict(dcomm=602240, scomm=0, trpose=0, max_rank=93712,
                      seconds=0.0002889829749329846,
                      loss1=1.4010554851746768),
    ("1.5d", 16): dict(dcomm=774528, scomm=0, trpose=0, max_rank=48408,
                       seconds=0.00031050685144164755,
                       loss1=1.4010554851746766),
    ("2d", 4): dict(dcomm=371808, scomm=204384, trpose=17032,
                    max_rank=172300, seconds=0.0003856949320889181,
                    loss1=1.4010554851746768),
    ("2d", 8): dict(dcomm=531680, scomm=223392, trpose=17048,
                    max_rank=121880, seconds=0.0006569257120889179,
                    loss1=1.4010554851746766),
    ("2d", 16): dict(dcomm=777696, scomm=446784, trpose=18616,
                     max_rank=102418, seconds=0.0008641358774239944,
                     loss1=1.4010554851746766),
    ("3d", 8): dict(dcomm=494816, scomm=223008, trpose=0,
                    max_rank=112444, seconds=0.0005234772996665574,
                    loss1=1.4010554851746768),
    ("3d", 27): dict(dcomm=823998, scomm=405000, trpose=0,
                     max_rank=65846, seconds=0.000745391827107963,
                     loss1=1.4010554851746768),
}


def build(name, p, kw):
    ds = make_synthetic(**GRAPH)
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=SEED, **kw)
    algo.setup(ds.features, ds.labels)
    return ds, algo


# ---------------------------------------------------------------------- #
# CommPlan unit behaviour
# ---------------------------------------------------------------------- #
class TestCommPlan:
    def test_group_interns_and_validates(self):
        plan = CommPlan(8)
        g1 = plan.group(range(4))
        g2 = plan.group((0, 1, 2, 3))
        assert g1 is g2  # interned: same tuple object on the hit
        assert plan.hits == 1 and plan.misses == 1

    def test_group_still_rejects_bad_members(self):
        plan = CommPlan(4)
        with pytest.raises(IndexError):
            plan.group((0, 7))
        with pytest.raises(ValueError):
            plan.group((1, 1))
        with pytest.raises(ValueError):
            plan.group(())

    def test_split_matches_array_split(self):
        plan = CommPlan(4)
        for n, parts in ((7, 3), (16, 4), (5, 8), (0, 2)):
            expected = tuple(block_ranges(n, parts))
            assert plan.split(n, parts) == expected
            sizes = [hi - lo for lo, hi in plan.split(n, parts)]
            np_sizes = [len(c) for c in np.array_split(np.arange(n), parts)]
            assert sizes == np_sizes

    def test_workspace_reuses_buffer(self):
        plan = CommPlan(2)
        a = plan.workspace("x", (4, 3))
        b = plan.workspace("x", (4, 3))
        assert a is b
        c = plan.workspace("x", (5, 3))  # different shape: new buffer
        assert c is not a
        assert plan.stats()["workspaces"] == 2

    def test_clear_resets(self):
        plan = CommPlan(2)
        plan.group((0, 1))
        plan.workspace("x", (2,))
        plan.clear()
        assert plan.cached_entries == 0
        assert plan.hits == 0 and plan.misses == 0


# ---------------------------------------------------------------------- #
# Steady-state epochs are pure cache hits
# ---------------------------------------------------------------------- #
class TestPlanCacheHits:
    @pytest.mark.parametrize("name,p,kw", [
        ("1d", 4, {}),
        ("1.5d", 8, {"replication": 4}),
        ("2d", 4, {}),
        ("3d", 8, {}),
    ])
    def test_no_new_cache_entries_after_warmup(self, name, p, kw):
        _, algo = build(name, p, kw)
        plan = algo.rt.plan
        algo.train_epoch(0)  # warm-up fills every cache
        entries = plan.cached_entries
        misses = plan.misses
        charge_keys = set(algo._cache)
        ws_keys = set(algo.workspace)
        algo.train_epoch(1)
        algo.train_epoch(2)
        assert plan.cached_entries == entries  # no new plan entries
        assert plan.misses == misses           # pure hits
        assert set(algo._cache) == charge_keys  # charge lists replayed
        assert set(algo.workspace) == ws_keys   # workspaces reused
        assert plan.hits > 0

    def test_workspace_buffers_are_stable_objects(self):
        _, algo = build("2d", 4, {})
        algo.train_epoch(0)
        ids_before = {k: id(v) for k, v in algo.workspace.items()}
        algo.train_epoch(1)
        ids_after = {k: id(v) for k, v in algo.workspace.items()}
        assert ids_before == ids_after  # zero reallocations in steady state


# ---------------------------------------------------------------------- #
# Ledger identity with the pre-optimization tree
# ---------------------------------------------------------------------- #
class TestLedgerOracle:
    @pytest.mark.parametrize("name,p,kw", CONFIGS)
    def test_epoch_ledger_matches_pre_opt_constants(self, name, p, kw):
        _, algo = build(name, p, kw)
        e0 = algo.train_epoch(0)
        e1 = algo.train_epoch(1)
        ref = PRE_OPT_ORACLE[(name, p)]
        for stats in (e0, e1):  # every epoch has the same structure
            assert stats.bytes_by_category[Category.DCOMM] == ref["dcomm"]
            assert stats.bytes_by_category[Category.SCOMM] == ref["scomm"]
            assert stats.bytes_by_category[Category.TRPOSE] == ref["trpose"]
            assert stats.max_rank_comm_bytes == ref["max_rank"]
        # Modeled seconds: identical arithmetic, identical result.  (The
        # constant was captured from epoch 1; epoch 0's *delta* can
        # differ in the last ulp because the cumulative wall clock is
        # subtracted -- that was true pre-optimization too.)
        assert e1.modeled_seconds == ref["seconds"]
        assert e1.loss == ref["loss1"]  # numerics byte-identical too

    @pytest.mark.parametrize("name,p,kw", [
        ("1d", 16, {}),
        ("1.5d", 16, {"replication": 4}),
        ("2d", 16, {}),
        ("3d", 8, {}),
    ])
    def test_epoch_ledger_matches_schedule_oracle(self, name, p, kw):
        """Executed bytes == PR 2's symbolic schedule, byte for byte."""
        from repro.simulate import predict_epoch
        from repro.simulate.schedule import GraphModel

        ds, algo = build(name, p, kw)
        stats = algo.train_epoch(0)
        sim_kw = {k: v for k, v in kw.items() if k != "grid"}
        point = predict_epoch(
            name, GraphModel.from_dataset(ds), p, hidden=HIDDEN,
            grid=kw.get("grid"), **sim_kw,
        )
        for cat in Category.COMM:
            assert stats.bytes_by_category[cat] == \
                point.bytes_by_category[cat], cat
        assert point.seconds == pytest.approx(stats.modeled_seconds,
                                              rel=1e-9)


# ---------------------------------------------------------------------- #
# Numerical equality with the serial reference (frozen seeds)
# ---------------------------------------------------------------------- #
class TestSerialEquality:
    @pytest.mark.parametrize("name,p,kw", [
        ("1d", 8, {}),
        ("1.5d", 8, {"replication": 4}),
        ("2d", 4, {}),
        ("3d", 8, {}),
    ])
    def test_verify_against_serial(self, name, p, kw):
        ds = make_synthetic(**GRAPH)
        algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=SEED, **kw)
        diff = algo.verify_against_serial(
            ds.features, ds.labels, epochs=3
        )
        assert diff < 1e-9

    def test_predict_after_fit_unchanged(self):
        ds, algo = build("2d", 4, {})
        algo.train_epoch(0)
        lp = algo.predict()
        assert lp.shape == (GRAPH["n"], GRAPH["n_classes"])
        # log-probabilities: rows sum to 1 after exp
        np.testing.assert_allclose(np.exp(lp).sum(axis=1), 1.0, rtol=1e-9)


# ---------------------------------------------------------------------- #
# Batched collective fast paths == their per-call equivalents
# ---------------------------------------------------------------------- #
class TestBatchedCollectiveEquivalence:
    def test_broadcast_many_matches_individual_broadcasts(self):
        rt1 = VirtualRuntime.make_1d(6)
        rt2 = VirtualRuntime.make_1d(6)
        items = [
            ((0, 1, 2), 1, np.ones((4, 3))),
            ((3, 4, 5), 3, np.ones((2, 7))),
        ]
        out = rt1.coll.broadcast_many(items, category=Category.DCOMM,
                                      pipelined=True)
        with rt2.tracker.step_scope():
            for group, root, value in items:
                rt2.coll.broadcast(group, root, value,
                                   category=Category.DCOMM, pipelined=True)
        assert len(out) == 2 and not out[0].flags.writeable
        for r in range(6):
            a = rt1.tracker.per_rank[r][Category.DCOMM]
            b = rt2.tracker.per_rank[r][Category.DCOMM]
            assert (a.seconds, a.bytes, a.messages) == (
                b.seconds, b.bytes, b.messages)
        assert rt1.tracker.wall_seconds() == rt2.tracker.wall_seconds()

    def test_broadcast_charges_replay_identical(self):
        rt1 = VirtualRuntime.make_1d(4)
        rt2 = VirtualRuntime.make_1d(4)
        items = [((0, 1), 0, np.ones(8)), ((2, 3), 2, np.ones(16))]
        charges = rt1.coll.broadcast_charges(items, pipelined=False)
        rt1.tracker.charge_many(Category.DCOMM, charges)
        rt2.coll.broadcast_many(items, category=Category.DCOMM)
        for r in range(4):
            a = rt1.tracker.per_rank[r][Category.DCOMM]
            b = rt2.tracker.per_rank[r][Category.DCOMM]
            assert (a.seconds, a.bytes, a.messages) == (
                b.seconds, b.bytes, b.messages)

    def test_sendrecv_many_matches_individual(self):
        rt1 = VirtualRuntime.make_1d(4)
        rt2 = VirtualRuntime.make_1d(4)
        items = [(0, 1, np.ones(4)), (2, 2, np.ones(3)), (3, 0, np.ones(8))]
        out = rt1.coll.sendrecv_many(items)
        with rt2.tracker.step_scope():
            for src, dst, v in items:
                rt2.coll.sendrecv(src, dst, v)
        assert out[1] is items[1][2]  # self-send passes through
        for r in range(4):
            a = rt1.tracker.per_rank[r][Category.DCOMM]
            b = rt2.tracker.per_rank[r][Category.DCOMM]
            assert (a.seconds, a.bytes, a.messages) == (
                b.seconds, b.bytes, b.messages)

    def test_charge_many_matches_charge_loop(self):
        t1, t2 = CommTracker(3), CommTracker(3)
        items = [(0, 1.0, 10, 1, 5), (1, 2.0, 20, 2, 0), (2, 0.5, 0, 0, 7)]
        t1.charge_many(Category.SPMM, items)
        with t2.step_scope():
            for r, sec, nb, msg, fl in items:
                t2.charge(r, Category.SPMM, sec, nbytes=nb, messages=msg,
                          flops=fl)
        for r in range(3):
            a, b = t1.per_rank[r][Category.SPMM], t2.per_rank[r][Category.SPMM]
            assert (a.seconds, a.bytes, a.messages, a.flops) == (
                b.seconds, b.bytes, b.messages, b.flops)
        assert t1.wall_seconds() == t2.wall_seconds()
        assert t1.nsteps == t2.nsteps

    def test_donated_allreduce_matches_copying_allreduce(self):
        rt1 = VirtualRuntime.make_1d(3)
        rt2 = VirtualRuntime.make_1d(3)
        vals1 = {r: np.full((4, 2), float(r + 1)) for r in range(3)}
        vals2 = {r: v.copy() for r, v in vals1.items()}
        out1 = rt1.coll.allreduce(range(3), vals1, donate_first=True)
        out2 = rt2.coll.allreduce(range(3), vals2)
        np.testing.assert_array_equal(out1[0], out2[0])
        assert out1[0].base is vals1[0]  # in place: leader donated
        assert rt1.tracker.total_bytes() == rt2.tracker.total_bytes()
