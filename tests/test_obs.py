"""repro.obs: span recording, trace merging, exports, and neutrality.

The tentpole contract under test (ISSUE 7): tracing is an *observer* --
a fit with span recording enabled produces bit-equal losses and a
byte-identical ledger digest versus an untraced fit, on the virtual
runtime and on the process backend (shm and tcp), while still costing
exactly one driver dispatch.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.obs import (
    MergedTrace,
    MetricsRegistry,
    SPAN_CATEGORIES,
    SpanRecorder,
    TraceSpan,
    build_trace_meta,
    drift_report,
    export_chrome_trace,
    format_drift_report,
    merge_worker_obs,
    metrics_from_trace,
    trace_from_chrome,
    traced_fit,
    validate_chrome_trace,
)
from repro.obs import spans as spans_mod
from repro.obs.metrics import Counter, Gauge, Summary
from repro.parallel.runtime import ledger_digest

EPOCHS = 3
HIDDEN = 8


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=80, avg_degree=5, f=10, n_classes=3, seed=7)


# --------------------------------------------------------------------- #
# span recorder
# --------------------------------------------------------------------- #
class TestSpanRecorder:
    def test_record_and_drain(self):
        rec = SpanRecorder(capacity=8)
        rec.record("a", "spmm", 0.0, 1.0)
        rec.record("b", "dcomm", 1.0, 2.0, ("meta",))
        out = rec.drain()
        assert [s[0] for s in out] == ["a", "b"]
        assert out[1][4] == ("meta",)
        assert rec.dropped == 0

    def test_ring_overwrites_oldest(self):
        rec = SpanRecorder(capacity=3)
        for i in range(5):
            rec.record(f"s{i}", "misc", float(i), float(i) + 0.5)
        out = rec.drain()
        # Oldest two were overwritten; survivors stay in record order.
        assert [s[0] for s in out] == ["s2", "s3", "s4"]
        assert rec.dropped == 2

    def test_enable_disable_toggle_active(self):
        assert spans_mod.ACTIVE is None
        rec = spans_mod.enable(16)
        try:
            assert spans_mod.ACTIVE is rec
            assert spans_mod.is_enabled()
        finally:
            spans_mod.disable()
        assert spans_mod.ACTIVE is None
        assert not spans_mod.is_enabled()

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


# --------------------------------------------------------------------- #
# merging + self-time accounting (synthetic spans, exact arithmetic)
# --------------------------------------------------------------------- #
def _blob(worker, ranks, spans, align=0.0):
    return {"worker": worker, "ranks": list(ranks), "align": align,
            "spans": spans, "dropped": 0}


class TestMergeWorkerObs:
    def test_same_host_offset_not_applied(self):
        # Same-host monotonic clocks share an epoch: the raw offset
        # (dispatch-to-align latency) must NOT shift the spans.
        blob = _blob(0, [0], [("epoch", "epoch", 10.0, 11.0, (0,))],
                     align=10.0)
        tr = merge_worker_obs([blob], t_dispatch=10.0005)
        assert tr.spans[0].t0 == pytest.approx(10.0)

    def test_large_skew_offset_applied(self):
        # A worker whose monotonic epoch differs by +1000s (another host)
        # is realigned onto the driver clock.
        blob = _blob(0, [0], [("epoch", "epoch", 1010.0, 1011.0, (0,))],
                     align=1010.0)
        tr = merge_worker_obs([blob], t_dispatch=10.0)
        assert tr.spans[0].t0 == pytest.approx(10.0)

    def test_pid_tid_and_workers_map(self):
        blobs = [
            _blob(0, [0, 1], [("epoch", "epoch", 0.0, 1.0, (0,))]),
            _blob(1, [2, 3], [("epoch", "epoch", 0.0, 1.2, (0,))]),
            None,
        ]
        tr = merge_worker_obs(blobs)
        assert sorted(tr.workers) == [0, 1]
        assert tr.workers[1]["ranks"] == [2, 3]
        assert sorted({s.pid for s in tr.spans}) == [0, 1]
        assert {s.tid for s in tr.spans} == {0, 2}  # min rank per worker


class TestSelfTimeTree:
    def _trace(self):
        # worker 0: epoch [0,10] containing a dcomm span [1,4] which
        # itself contains an xchg [2,3] (transparent: its time stays in
        # the dcomm span), plus an spmm leaf [5,8].
        spans = [
            TraceSpan("epoch", "epoch", 0.0, 10.0, 0, 0, (0,)),
            TraceSpan("bcast", "dcomm", 1.0, 4.0, 0, 0, None),
            TraceSpan("exchange", "xchg", 2.0, 3.0, 0, 0,
                      ("g", 0.1, 0.6, 0.3, 64)),
            TraceSpan("spmm.fwd", "spmm", 5.0, 8.0, 0, 0, None),
        ]
        return MergedTrace(spans, {0: {"ranks": [0], "dropped": 0}})

    def test_category_self_seconds(self):
        tr = self._trace()
        by_cat = tr.per_worker_breakdown(skip_first=False)[0]
        # epoch self = 10 - (3 dcomm + 3 spmm) = 4 -> misc; xchg is
        # transparent so dcomm keeps its full 3s.
        assert by_cat["dcomm"] == pytest.approx(3.0)
        assert by_cat["spmm"] == pytest.approx(3.0)
        assert by_cat["misc"] == pytest.approx(4.0)
        assert "xchg" not in by_cat

    def test_phase_breakdown_names(self):
        phases = self._trace().phase_breakdown(skip_first=False)
        assert phases["bcast"]["seconds"] == pytest.approx(3.0)
        assert phases["bcast"]["category"] == "dcomm"
        assert phases["spmm.fwd"]["count"] == 1
        assert "epoch" not in phases

    def test_exchange_summary(self):
        xs = self._trace().exchange_summary()
        assert xs["count"] == 1
        assert xs["wait_s"] == pytest.approx(0.6)
        assert xs["bytes_sent"] == 64

    def test_single_recorder_pacesetter_sentinel(self):
        # One recorder has no one to race: pacesetter is the -1
        # sentinel, mirroring StepTracer's single-rank convention.
        stats = self._trace().epoch_stats()
        assert [e["pacesetter"] for e in stats] == [-1]
        assert self._trace().straggler_counts() == {-1: 1}

    def test_two_worker_pacesetter(self):
        spans = [
            TraceSpan("epoch", "epoch", 0.0, 1.0, 0, 0, (0,)),
            TraceSpan("epoch", "epoch", 0.0, 2.0, 1, 2, (0,)),
        ]
        tr = MergedTrace(spans, {0: {"ranks": [0], "dropped": 0}, 1: {"ranks": [2], "dropped": 0}})
        assert tr.epoch_stats()[0]["pacesetter"] == 1
        assert tr.straggler_counts() == {1: 1}

    def test_skip_first_epoch(self):
        spans = [
            TraceSpan("epoch", "epoch", 0.0, 5.0, 0, 0, (0,)),
            TraceSpan("spmm.x", "spmm", 1.0, 4.0, 0, 0, None),
            TraceSpan("epoch", "epoch", 5.0, 6.0, 0, 0, (1,)),
            TraceSpan("spmm.x", "spmm", 5.2, 5.4, 0, 0, None),
        ]
        tr = MergedTrace(spans, {0: {"ranks": [0], "dropped": 0}})
        warm = tr.measured_epoch_breakdown(skip_first=True)
        assert warm["spmm"] == pytest.approx(0.2)
        cold = tr.measured_epoch_breakdown(skip_first=False)
        assert cold["spmm"] == pytest.approx((3.0 + 0.2) / 2)


# --------------------------------------------------------------------- #
# chrome export / validation round-trip
# --------------------------------------------------------------------- #
class TestChromeTrace:
    def _export(self, ds, tmp_path):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7, "vertices": ds.adjacency.nrows,
                  "degree": 5.0, "features": 10, "classes": 3,
                  "backend": "virtual",
                  "machine": algo.rt.profile.name}
        path = str(tmp_path / "trace.json")
        doc = export_chrome_trace(
            tr, path, extra=build_trace_meta(config, hist, tr, 0.25))
        return path, doc, tr

    def test_export_is_valid_and_loadable(self, ds, tmp_path):
        path, doc, _ = self._export(ds, tmp_path)
        assert validate_chrome_trace(doc) == []
        with open(path) as fh:
            on_disk = json.load(fh)
        assert validate_chrome_trace(on_disk) == []
        assert on_disk["repro"]["schema"] == "repro-trace/1"
        cats = {e["cat"] for e in on_disk["traceEvents"] if e["ph"] == "X"}
        assert cats <= set(SPAN_CATEGORIES)
        assert "epoch" in cats

    def test_ts_strictly_increasing_per_track(self, ds, tmp_path):
        _, doc, _ = self._export(ds, tmp_path)
        seen = {}
        for e in doc["traceEvents"]:
            if e.get("ph") != "X":
                continue
            key = (e["pid"], e["tid"])
            assert key not in seen or e["ts"] > seen[key]
            seen[key] = e["ts"]

    def test_tampered_traces_rejected(self, ds, tmp_path):
        _, doc, _ = self._export(ds, tmp_path)
        bad_cat = json.loads(json.dumps(doc))
        next(e for e in bad_cat["traceEvents"]
             if e["ph"] == "X")["cat"] = "gpu"
        assert any("category" in p for p in validate_chrome_trace(bad_cat))

        neg_dur = json.loads(json.dumps(doc))
        next(e for e in neg_dur["traceEvents"]
             if e["ph"] == "X")["dur"] = -1.0
        assert validate_chrome_trace(neg_dur)

        not_obj = {"traceEvents": "nope"}
        assert validate_chrome_trace(not_obj)

    def test_round_trip_preserves_summary(self, ds, tmp_path):
        _, doc, tr = self._export(ds, tmp_path)
        back = trace_from_chrome(doc)
        assert len(back.spans) == len(tr.spans)
        a, b = tr.summary(), back.summary()
        assert b["epochs"] == a["epochs"]
        for cat, sec in a["measured_epoch_breakdown"].items():
            assert b["measured_epoch_breakdown"][cat] == \
                pytest.approx(sec, rel=1e-6)
        assert back.exchange_summary()["count"] == \
            tr.exchange_summary()["count"]


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_rejects_negative(self):
        c = Counter()
        c.inc(2)
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 2

    def test_summary_nearest_rank(self):
        s = Summary()
        for v in [1.0, 2.0, 3.0, 4.0]:
            s.observe(v)
        assert s.quantile(0.5) == 3.0   # nearest-rank round(0.5 * 3) = 2
        assert s.quantile(0.99) == 4.0
        assert s.quantile(0.0) == 1.0

    def test_render_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_widgets_total", "Widgets seen.",
                    {"kind": "a"}).inc(3)
        reg.gauge("repro_level", "Current level.").set(1.5)
        sm = reg.summary("repro_lat_seconds", "Latency.")
        sm.observe(0.5)
        text = reg.render()
        assert "# HELP repro_widgets_total Widgets seen." in text
        assert "# TYPE repro_widgets_total counter" in text
        assert 'repro_widgets_total{kind="a"} 3' in text
        assert "repro_level 1.5" in text
        assert 'repro_lat_seconds{quantile="0.5"} 0.5' in text
        assert "repro_lat_seconds_sum 0.5" in text
        assert "repro_lat_seconds_count 1" in text

    def test_metrics_from_trace(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        text = metrics_from_trace(tr, hist).render()
        assert "repro_epoch_seconds_count 3" in text
        assert 'repro_span_seconds{category="spmm"' in text
        assert "repro_final_loss" in text
        assert "repro_dropped_spans_total 0" in text


# --------------------------------------------------------------------- #
# traced_fit on the virtual runtime
# --------------------------------------------------------------------- #
class TestTracedFitVirtual:
    @pytest.mark.parametrize("name,p,kw", [
        ("1d", 4, {"variant": "ghost", "partition": "multilevel"}),
        ("2d", 4, {}),
    ])
    def test_neutral_and_complete(self, ds, name, p, kw):
        plain = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0, **kw)
        hist0 = plain.fit(ds.features, ds.labels, EPOCHS)
        digest0 = ledger_digest(plain.rt.tracker)

        algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0, **kw)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)

        assert list(hist.losses) == list(hist0.losses)
        assert ledger_digest(algo.rt.tracker) == digest0
        epochs = [s for s in tr.spans if s.cat == "epoch"]
        assert len(epochs) == EPOCHS
        assert [s.meta[0] for s in sorted(epochs, key=lambda s: s.t0)] == \
            list(range(EPOCHS))
        assert spans_mod.ACTIVE is None  # recorder torn down

    def test_disabled_by_default(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        algo.fit(ds.features, ds.labels, 1)
        assert spans_mod.ACTIVE is None


# --------------------------------------------------------------------- #
# trace-neutrality on the process backend (the ISSUE 7 satellite)
# --------------------------------------------------------------------- #
def _run_process(ds, name, p, workers, transport, trace, kw):
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0,
                          backend="process", workers=workers,
                          transport=transport, **kw)
    try:
        hist = algo.fit(ds.features, ds.labels, EPOCHS,
                        trace=True if trace else None)
        digest = ledger_digest(algo.rt.tracker)
        stats = algo.rt.backend_stats(workers=False)
        return list(hist.losses), digest, algo.last_trace, stats
    finally:
        algo.rt.close()


class TestProcessBackendNeutrality:
    @pytest.mark.parametrize("name,transport,kw", [
        ("1d", "shm", {"variant": "ghost", "partition": "multilevel"}),
        ("2d", "shm", {}),
        ("1d", "tcp", {"variant": "ghost", "partition": "multilevel"}),
        ("2d", "tcp", {}),
    ])
    def test_traced_fit_bit_identical(self, ds, name, transport, kw):
        losses0, digest0, trace0, _ = _run_process(
            ds, name, 4, 2, transport, False, kw)
        losses, digest, tr, stats = _run_process(
            ds, name, 4, 2, transport, True, kw)

        assert trace0 is None
        assert losses == losses0          # bit-equal, not approx
        assert digest == digest0          # byte-identical ledger
        assert stats["fit_dispatches"] == 1

        # Every worker contributed: an epoch span per epoch per worker,
        # and the channel recorded its exchanges.
        assert sorted(tr.workers) == [0, 1]
        for pid in (0, 1):
            eps = [s for s in tr.spans
                   if s.pid == pid and s.cat == "epoch"]
            assert len(eps) == EPOCHS
        assert any(s.cat == "xchg" for s in tr.spans)
        xs = tr.exchange_summary()
        assert xs["count"] > 0 and xs["bytes_sent"] > 0


# --------------------------------------------------------------------- #
# drift report
# --------------------------------------------------------------------- #
class TestDriftReport:
    def _payload(self, ds, tmp_path):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7, "vertices": ds.adjacency.nrows,
                  "degree": 5.0, "features": 10, "classes": 3,
                  "backend": "virtual",
                  "machine": algo.rt.profile.name}
        return export_chrome_trace(
            tr, str(tmp_path / "t.json"),
            extra=build_trace_meta(config, hist, tr, 0.25))

    def test_report_structure(self, ds, tmp_path):
        rep = drift_report(self._payload(ds, tmp_path))
        assert rep["schema"] == "repro-report/1"
        cats = {r["category"] for r in rep["categories"]}
        assert {"dcomm", "spmm", "misc"} <= cats
        for row in rep["categories"]:
            assert row["modeled_s"] is not None
            if row["modeled_s"] > 0:
                assert row["drift"] == pytest.approx(
                    row["measured_s"] / row["modeled_s"])
        assert rep["totals"]["measured_s"] > 0
        assert rep["phases"]

    def test_report_formats(self, ds, tmp_path):
        text = format_drift_report(drift_report(self._payload(ds, tmp_path)))
        assert "drift" in text
        assert "dcomm" in text
        assert "pacesetter" in text.lower()

    def test_report_without_meta_degrades(self, ds, tmp_path):
        payload = self._payload(ds, tmp_path)
        payload["repro"].pop("config")
        rep = drift_report(payload)
        assert any("config" in n or "model" in n for n in rep["notes"])


# --------------------------------------------------------------------- #
# CLI wiring: --trace/--metrics/--json and `repro report`
# --------------------------------------------------------------------- #
class TestCli:
    def test_train_trace_metrics_json(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = str(tmp_path / "t.json")
        prom_path = str(tmp_path / "m.prom")
        rc = main(["train", "--algorithm", "1d", "--gpus", "4",
                   "--epochs", "2", "--hidden", "8",
                   "--vertices", "96", "--degree", "5",
                   "--trace", trace_path, "--metrics", prom_path, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-train/1"
        assert len(doc["losses"]) == 2
        assert doc["trace_path"] == trace_path
        with open(trace_path) as fh:
            payload = json.load(fh)
        assert validate_chrome_trace(payload) == []
        prom = open(prom_path).read()
        assert "repro_epoch_seconds" in prom

    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = str(tmp_path / "t.json")
        assert main(["train", "--algorithm", "1d", "--gpus", "4",
                     "--epochs", "2", "--hidden", "8",
                     "--vertices", "96", "--degree", "5",
                     "--trace", trace_path,
                     "--json"]) == 0
        capsys.readouterr()
        rep_json = str(tmp_path / "report.json")
        assert main(["report", trace_path, "--json", rep_json]) == 0
        out = capsys.readouterr().out
        assert "drift" in out
        rep = json.load(open(rep_json))
        assert rep["schema"] == "repro-report/1"

    def test_report_rejects_invalid(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "name": "a", "cat": "gpu", "ts": 0, "dur": 1,
             "pid": 0, "tid": 0}]}))
        assert main(["report", str(bad)]) == 1
