"""repro.obs: span recording, trace merging, exports, and neutrality.

The tentpole contract under test (ISSUE 7): tracing is an *observer* --
a fit with span recording enabled produces bit-equal losses and a
byte-identical ledger digest versus an untraced fit, on the virtual
runtime and on the process backend (shm and tcp), while still costing
exactly one driver dispatch.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.obs import (
    MergedTrace,
    MetricsRegistry,
    SPAN_CATEGORIES,
    SpanRecorder,
    TraceSpan,
    build_trace_meta,
    drift_report,
    export_chrome_trace,
    format_drift_report,
    merge_worker_obs,
    metrics_from_trace,
    trace_from_chrome,
    traced_fit,
    validate_chrome_trace,
)
from repro.obs import spans as spans_mod
from repro.obs.metrics import Counter, Gauge, Summary
from repro.parallel.runtime import ledger_digest

EPOCHS = 3
HIDDEN = 8


@pytest.fixture(scope="module")
def ds():
    return make_synthetic(n=80, avg_degree=5, f=10, n_classes=3, seed=7)


# --------------------------------------------------------------------- #
# span recorder
# --------------------------------------------------------------------- #
class TestSpanRecorder:
    def test_record_and_drain(self):
        rec = SpanRecorder(capacity=8)
        rec.record("a", "spmm", 0.0, 1.0)
        rec.record("b", "dcomm", 1.0, 2.0, ("meta",))
        out = rec.drain()
        assert [s[0] for s in out] == ["a", "b"]
        assert out[1][4] == ("meta",)
        assert rec.dropped == 0

    def test_ring_overwrites_oldest(self):
        rec = SpanRecorder(capacity=3)
        for i in range(5):
            rec.record(f"s{i}", "misc", float(i), float(i) + 0.5)
        out = rec.drain()
        # Oldest two were overwritten; survivors stay in record order.
        assert [s[0] for s in out] == ["s2", "s3", "s4"]
        assert rec.dropped == 2

    def test_enable_disable_toggle_active(self):
        assert spans_mod.ACTIVE is None
        rec = spans_mod.enable(16)
        try:
            assert spans_mod.ACTIVE is rec
            assert spans_mod.is_enabled()
        finally:
            spans_mod.disable()
        assert spans_mod.ACTIVE is None
        assert not spans_mod.is_enabled()

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


# --------------------------------------------------------------------- #
# merging + self-time accounting (synthetic spans, exact arithmetic)
# --------------------------------------------------------------------- #
def _blob(worker, ranks, spans, align=0.0):
    return {"worker": worker, "ranks": list(ranks), "align": align,
            "spans": spans, "dropped": 0}


class TestMergeWorkerObs:
    def test_same_host_offset_not_applied(self):
        # Same-host monotonic clocks share an epoch: the raw offset
        # (dispatch-to-align latency) must NOT shift the spans.
        blob = _blob(0, [0], [("epoch", "epoch", 10.0, 11.0, (0,))],
                     align=10.0)
        tr = merge_worker_obs([blob], t_dispatch=10.0005)
        assert tr.spans[0].t0 == pytest.approx(10.0)

    def test_large_skew_offset_applied(self):
        # A worker whose monotonic epoch differs by +1000s (another host)
        # is realigned onto the driver clock.
        blob = _blob(0, [0], [("epoch", "epoch", 1010.0, 1011.0, (0,))],
                     align=1010.0)
        tr = merge_worker_obs([blob], t_dispatch=10.0)
        assert tr.spans[0].t0 == pytest.approx(10.0)

    def test_pid_tid_and_workers_map(self):
        blobs = [
            _blob(0, [0, 1], [("epoch", "epoch", 0.0, 1.0, (0,))]),
            _blob(1, [2, 3], [("epoch", "epoch", 0.0, 1.2, (0,))]),
            None,
        ]
        tr = merge_worker_obs(blobs)
        assert sorted(tr.workers) == [0, 1]
        assert tr.workers[1]["ranks"] == [2, 3]
        assert sorted({s.pid for s in tr.spans}) == [0, 1]
        assert {s.tid for s in tr.spans} == {0, 2}  # min rank per worker


class TestSelfTimeTree:
    def _trace(self):
        # worker 0: epoch [0,10] containing a dcomm span [1,4] which
        # itself contains an xchg [2,3] (transparent: its time stays in
        # the dcomm span), plus an spmm leaf [5,8].
        spans = [
            TraceSpan("epoch", "epoch", 0.0, 10.0, 0, 0, (0,)),
            TraceSpan("bcast", "dcomm", 1.0, 4.0, 0, 0, None),
            TraceSpan("exchange", "xchg", 2.0, 3.0, 0, 0,
                      ("g", 0.1, 0.6, 0.3, 64)),
            TraceSpan("spmm.fwd", "spmm", 5.0, 8.0, 0, 0, None),
        ]
        return MergedTrace(spans, {0: {"ranks": [0], "dropped": 0}})

    def test_category_self_seconds(self):
        tr = self._trace()
        by_cat = tr.per_worker_breakdown(skip_first=False)[0]
        # epoch self = 10 - (3 dcomm + 3 spmm) = 4 -> misc; xchg is
        # transparent so dcomm keeps its full 3s.
        assert by_cat["dcomm"] == pytest.approx(3.0)
        assert by_cat["spmm"] == pytest.approx(3.0)
        assert by_cat["misc"] == pytest.approx(4.0)
        assert "xchg" not in by_cat

    def test_phase_breakdown_names(self):
        phases = self._trace().phase_breakdown(skip_first=False)
        assert phases["bcast"]["seconds"] == pytest.approx(3.0)
        assert phases["bcast"]["category"] == "dcomm"
        assert phases["spmm.fwd"]["count"] == 1
        assert "epoch" not in phases

    def test_exchange_summary(self):
        xs = self._trace().exchange_summary()
        assert xs["count"] == 1
        assert xs["wait_s"] == pytest.approx(0.6)
        assert xs["bytes_sent"] == 64

    def test_single_recorder_pacesetter_sentinel(self):
        # One recorder has no one to race: pacesetter is the -1
        # sentinel, mirroring StepTracer's single-rank convention.
        stats = self._trace().epoch_stats()
        assert [e["pacesetter"] for e in stats] == [-1]
        assert self._trace().straggler_counts() == {-1: 1}

    def test_two_worker_pacesetter(self):
        spans = [
            TraceSpan("epoch", "epoch", 0.0, 1.0, 0, 0, (0,)),
            TraceSpan("epoch", "epoch", 0.0, 2.0, 1, 2, (0,)),
        ]
        tr = MergedTrace(spans, {0: {"ranks": [0], "dropped": 0}, 1: {"ranks": [2], "dropped": 0}})
        assert tr.epoch_stats()[0]["pacesetter"] == 1
        assert tr.straggler_counts() == {1: 1}

    def test_skip_first_epoch(self):
        spans = [
            TraceSpan("epoch", "epoch", 0.0, 5.0, 0, 0, (0,)),
            TraceSpan("spmm.x", "spmm", 1.0, 4.0, 0, 0, None),
            TraceSpan("epoch", "epoch", 5.0, 6.0, 0, 0, (1,)),
            TraceSpan("spmm.x", "spmm", 5.2, 5.4, 0, 0, None),
        ]
        tr = MergedTrace(spans, {0: {"ranks": [0], "dropped": 0}})
        warm = tr.measured_epoch_breakdown(skip_first=True)
        assert warm["spmm"] == pytest.approx(0.2)
        cold = tr.measured_epoch_breakdown(skip_first=False)
        assert cold["spmm"] == pytest.approx((3.0 + 0.2) / 2)


# --------------------------------------------------------------------- #
# chrome export / validation round-trip
# --------------------------------------------------------------------- #
class TestChromeTrace:
    def _export(self, ds, tmp_path):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7, "vertices": ds.adjacency.nrows,
                  "degree": 5.0, "features": 10, "classes": 3,
                  "backend": "virtual",
                  "machine": algo.rt.profile.name}
        path = str(tmp_path / "trace.json")
        doc = export_chrome_trace(
            tr, path, extra=build_trace_meta(config, hist, tr, 0.25))
        return path, doc, tr

    def test_export_is_valid_and_loadable(self, ds, tmp_path):
        path, doc, _ = self._export(ds, tmp_path)
        assert validate_chrome_trace(doc) == []
        with open(path) as fh:
            on_disk = json.load(fh)
        assert validate_chrome_trace(on_disk) == []
        assert on_disk["repro"]["schema"] == "repro-trace/1"
        cats = {e["cat"] for e in on_disk["traceEvents"] if e["ph"] == "X"}
        assert cats <= set(SPAN_CATEGORIES)
        assert "epoch" in cats

    def test_ts_strictly_increasing_per_track(self, ds, tmp_path):
        _, doc, _ = self._export(ds, tmp_path)
        seen = {}
        for e in doc["traceEvents"]:
            if e.get("ph") != "X":
                continue
            key = (e["pid"], e["tid"])
            assert key not in seen or e["ts"] > seen[key]
            seen[key] = e["ts"]

    def test_tampered_traces_rejected(self, ds, tmp_path):
        _, doc, _ = self._export(ds, tmp_path)
        bad_cat = json.loads(json.dumps(doc))
        next(e for e in bad_cat["traceEvents"]
             if e["ph"] == "X")["cat"] = "gpu"
        assert any("category" in p for p in validate_chrome_trace(bad_cat))

        neg_dur = json.loads(json.dumps(doc))
        next(e for e in neg_dur["traceEvents"]
             if e["ph"] == "X")["dur"] = -1.0
        assert validate_chrome_trace(neg_dur)

        not_obj = {"traceEvents": "nope"}
        assert validate_chrome_trace(not_obj)

    def test_round_trip_preserves_summary(self, ds, tmp_path):
        _, doc, tr = self._export(ds, tmp_path)
        back = trace_from_chrome(doc)
        assert len(back.spans) == len(tr.spans)
        a, b = tr.summary(), back.summary()
        assert b["epochs"] == a["epochs"]
        for cat, sec in a["measured_epoch_breakdown"].items():
            assert b["measured_epoch_breakdown"][cat] == \
                pytest.approx(sec, rel=1e-6)
        assert back.exchange_summary()["count"] == \
            tr.exchange_summary()["count"]


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_rejects_negative(self):
        c = Counter()
        c.inc(2)
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 2

    def test_summary_nearest_rank(self):
        s = Summary()
        for v in [1.0, 2.0, 3.0, 4.0]:
            s.observe(v)
        assert s.quantile(0.5) == 3.0   # nearest-rank round(0.5 * 3) = 2
        assert s.quantile(0.99) == 4.0
        assert s.quantile(0.0) == 1.0

    def test_render_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_widgets_total", "Widgets seen.",
                    {"kind": "a"}).inc(3)
        reg.gauge("repro_level", "Current level.").set(1.5)
        sm = reg.summary("repro_lat_seconds", "Latency.")
        sm.observe(0.5)
        text = reg.render()
        assert "# HELP repro_widgets_total Widgets seen." in text
        assert "# TYPE repro_widgets_total counter" in text
        assert 'repro_widgets_total{kind="a"} 3' in text
        assert "repro_level 1.5" in text
        assert 'repro_lat_seconds{quantile="0.5"} 0.5' in text
        assert "repro_lat_seconds_sum 0.5" in text
        assert "repro_lat_seconds_count 1" in text

    def test_metrics_from_trace(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        text = metrics_from_trace(tr, hist).render()
        assert "repro_epoch_seconds_count 3" in text
        assert 'repro_span_seconds{category="spmm"' in text
        assert "repro_final_loss" in text
        assert "repro_dropped_spans_total 0" in text


# --------------------------------------------------------------------- #
# traced_fit on the virtual runtime
# --------------------------------------------------------------------- #
class TestTracedFitVirtual:
    @pytest.mark.parametrize("name,p,kw", [
        ("1d", 4, {"variant": "ghost", "partition": "multilevel"}),
        ("2d", 4, {}),
    ])
    def test_neutral_and_complete(self, ds, name, p, kw):
        plain = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0, **kw)
        hist0 = plain.fit(ds.features, ds.labels, EPOCHS)
        digest0 = ledger_digest(plain.rt.tracker)

        algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0, **kw)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)

        assert list(hist.losses) == list(hist0.losses)
        assert ledger_digest(algo.rt.tracker) == digest0
        epochs = [s for s in tr.spans if s.cat == "epoch"]
        assert len(epochs) == EPOCHS
        assert [s.meta[0] for s in sorted(epochs, key=lambda s: s.t0)] == \
            list(range(EPOCHS))
        assert spans_mod.ACTIVE is None  # recorder torn down

    def test_disabled_by_default(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        algo.fit(ds.features, ds.labels, 1)
        assert spans_mod.ACTIVE is None


# --------------------------------------------------------------------- #
# trace-neutrality on the process backend (the ISSUE 7 satellite)
# --------------------------------------------------------------------- #
def _run_process(ds, name, p, workers, transport, trace, kw):
    algo = make_algorithm(name, p, ds, hidden=HIDDEN, seed=0,
                          backend="process", workers=workers,
                          transport=transport, **kw)
    try:
        hist = algo.fit(ds.features, ds.labels, EPOCHS,
                        trace=True if trace else None)
        digest = ledger_digest(algo.rt.tracker)
        stats = algo.rt.backend_stats(workers=False)
        return list(hist.losses), digest, algo.last_trace, stats
    finally:
        algo.rt.close()


class TestProcessBackendNeutrality:
    @pytest.mark.parametrize("name,transport,kw", [
        ("1d", "shm", {"variant": "ghost", "partition": "multilevel"}),
        ("2d", "shm", {}),
        ("1d", "tcp", {"variant": "ghost", "partition": "multilevel"}),
        ("2d", "tcp", {}),
    ])
    def test_traced_fit_bit_identical(self, ds, name, transport, kw):
        losses0, digest0, trace0, _ = _run_process(
            ds, name, 4, 2, transport, False, kw)
        losses, digest, tr, stats = _run_process(
            ds, name, 4, 2, transport, True, kw)

        assert trace0 is None
        assert losses == losses0          # bit-equal, not approx
        assert digest == digest0          # byte-identical ledger
        assert stats["fit_dispatches"] == 1

        # Every worker contributed: an epoch span per epoch per worker,
        # and the channel recorded its exchanges.
        assert sorted(tr.workers) == [0, 1]
        for pid in (0, 1):
            eps = [s for s in tr.spans
                   if s.pid == pid and s.cat == "epoch"]
            assert len(eps) == EPOCHS
        assert any(s.cat == "xchg" for s in tr.spans)
        xs = tr.exchange_summary()
        assert xs["count"] > 0 and xs["bytes_sent"] > 0


# --------------------------------------------------------------------- #
# drift report
# --------------------------------------------------------------------- #
class TestDriftReport:
    def _payload(self, ds, tmp_path):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7, "vertices": ds.adjacency.nrows,
                  "degree": 5.0, "features": 10, "classes": 3,
                  "backend": "virtual",
                  "machine": algo.rt.profile.name}
        return export_chrome_trace(
            tr, str(tmp_path / "t.json"),
            extra=build_trace_meta(config, hist, tr, 0.25))

    def test_report_structure(self, ds, tmp_path):
        rep = drift_report(self._payload(ds, tmp_path))
        assert rep["schema"] == "repro-report/1"
        cats = {r["category"] for r in rep["categories"]}
        assert {"dcomm", "spmm", "misc"} <= cats
        for row in rep["categories"]:
            assert row["modeled_s"] is not None
            if row["modeled_s"] > 0:
                assert row["drift"] == pytest.approx(
                    row["measured_s"] / row["modeled_s"])
        assert rep["totals"]["measured_s"] > 0
        assert rep["phases"]

    def test_report_formats(self, ds, tmp_path):
        text = format_drift_report(drift_report(self._payload(ds, tmp_path)))
        assert "drift" in text
        assert "dcomm" in text
        assert "pacesetter" in text.lower()

    def test_report_without_meta_degrades(self, ds, tmp_path):
        payload = self._payload(ds, tmp_path)
        payload["repro"].pop("config")
        rep = drift_report(payload)
        assert any("config" in n or "model" in n for n in rep["notes"])


# --------------------------------------------------------------------- #
# CLI wiring: --trace/--metrics/--json and `repro report`
# --------------------------------------------------------------------- #
class TestCli:
    def test_train_trace_metrics_json(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = str(tmp_path / "t.json")
        prom_path = str(tmp_path / "m.prom")
        rc = main(["train", "--algorithm", "1d", "--gpus", "4",
                   "--epochs", "2", "--hidden", "8",
                   "--vertices", "96", "--degree", "5",
                   "--trace", trace_path, "--metrics", prom_path, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-train/1"
        assert len(doc["losses"]) == 2
        assert doc["trace_path"] == trace_path
        with open(trace_path) as fh:
            payload = json.load(fh)
        assert validate_chrome_trace(payload) == []
        prom = open(prom_path).read()
        assert "repro_epoch_seconds" in prom

    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = str(tmp_path / "t.json")
        assert main(["train", "--algorithm", "1d", "--gpus", "4",
                     "--epochs", "2", "--hidden", "8",
                     "--vertices", "96", "--degree", "5",
                     "--trace", trace_path,
                     "--json"]) == 0
        capsys.readouterr()
        rep_json = str(tmp_path / "report.json")
        assert main(["report", trace_path, "--json", rep_json]) == 0
        out = capsys.readouterr().out
        assert "drift" in out
        rep = json.load(open(rep_json))
        assert rep["schema"] == "repro-report/1"

    def test_report_rejects_invalid(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "name": "a", "cat": "gpu", "ts": 0, "dur": 1,
             "pid": 0, "tid": 0}]}))
        assert main(["report", str(bad)]) == 1


# --------------------------------------------------------------------- #
# ISSUE 9: hash-chained event log
# --------------------------------------------------------------------- #
class TestEventLog:
    def _write(self, tmp_path, n_epochs=3):
        from repro.obs.events import EventLog
        path = tmp_path / "ev.jsonl"
        with EventLog(path) as log:
            log.emit("run_start", config={"algorithm": "1d"})
            for i in range(n_epochs):
                log.emit("epoch", epoch=i, loss=1.0 / (i + 1))
            log.emit("checkpoint", path="ck.npz", epochs=n_epochs)
            log.emit("run_end", status="ok")
        return path

    def test_round_trip_validates(self, tmp_path):
        from repro.obs.events import read_event_log, validate_event_log
        path = self._write(tmp_path)
        assert validate_event_log(path) == []
        events = read_event_log(path)
        assert [e["type"] for e in events] == \
            ["run_start", "epoch", "epoch", "epoch", "checkpoint",
             "run_end"]
        assert [e["seq"] for e in events] == list(range(6))
        assert [e["data"]["epoch"] for e in events
                if e["type"] == "epoch"] == [0, 1, 2]

    def test_unknown_type_rejected_at_emit(self, tmp_path):
        from repro.obs.events import EventLog
        with EventLog(tmp_path / "ev.jsonl") as log:
            with pytest.raises(ValueError, match="unknown event type"):
                log.emit("gpu_melted")

    def test_edited_line_breaks_chain(self, tmp_path):
        from repro.obs.events import validate_event_log
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        # Forge epoch 1's loss in place: the line still parses, its own
        # link is intact, but every *later* link hashes the original
        # bytes, so the chain breaks right after the edit.
        lines[2] = lines[2].replace('"loss":0.5', '"loss":0.1')
        problems = validate_event_log(lines)
        assert any("hash chain broken" in p for p in problems)

    def test_truncated_last_line_rejected(self, tmp_path):
        from repro.obs.events import validate_event_log
        path = self._write(tmp_path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])  # crash mid-write
        problems = validate_event_log(path)
        assert any("not valid JSON" in p for p in problems)

    def test_deleted_line_breaks_sequence(self, tmp_path):
        from repro.obs.events import validate_event_log
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        del lines[2]
        problems = validate_event_log(lines)
        assert any("not contiguous" in p for p in problems)

    def test_empty_log_is_a_problem(self):
        from repro.obs.events import validate_event_log
        assert validate_event_log([]) == ["event log is empty"]

    def test_read_raises_on_tampered(self, tmp_path):
        from repro.obs.events import read_event_log
        path = self._write(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:1] + lines[2:]) + "\n")
        with pytest.raises(ValueError, match="failed event-log"):
            read_event_log(path)

    def test_virtual_fit_emits_epochs_and_checkpoints(self, ds, tmp_path):
        from repro.obs import events as events_mod
        from repro.obs.events import read_event_log
        path = tmp_path / "fit.jsonl"
        events_mod.enable(path)
        try:
            algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
            algo.fit(ds.features, ds.labels, EPOCHS,
                     checkpoint_path=str(tmp_path / "ck.npz"),
                     checkpoint_every=1)
        finally:
            events_mod.disable()
        assert events_mod.ACTIVE is None
        events = read_event_log(path)
        epochs = [e["data"]["epoch"] for e in events
                  if e["type"] == "epoch"]
        assert epochs == list(range(EPOCHS))
        assert sum(1 for e in events if e["type"] == "checkpoint") == EPOCHS


# --------------------------------------------------------------------- #
# ISSUE 9: live metrics endpoint
# --------------------------------------------------------------------- #
def _scrape(url):
    from urllib.request import urlopen
    with urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestLiveServer:
    def test_render_live_sample_fields(self):
        from repro.obs.live import render_live_sample
        text = render_live_sample({
            "epoch": 3, "loss": 0.25, "workers": 2, "restarts": 1,
            "fit_dispatches": 1, "recovering": True,
            "heartbeat_age_s": {0: 0.1, 1: 0.2},
            "span_seconds": {"spmm": 1.5},
        })
        assert "repro_up 1" in text
        assert "repro_live_epoch 3" in text
        assert "repro_live_loss 0.25" in text
        assert "repro_restarts_total 1" in text
        assert "repro_recovering 1" in text
        assert 'repro_heartbeat_age_seconds{worker="1"} 0.2' in text
        assert 'repro_live_span_seconds_total{category="spmm"} 1.5' in text

    def test_serves_sample_dict(self):
        from repro.obs.live import LiveServer
        with LiveServer(lambda: {"epoch": 2, "workers": 1}) as srv:
            status, text = _scrape(srv.url)
            assert status == 200
            assert "repro_live_epoch 2" in text
            # "/" is an alias for /metrics
            status, _ = _scrape(f"http://{srv.host}:{srv.port}/")
            assert status == 200

    def test_string_sampler_passthrough(self):
        from repro.obs.live import LiveServer
        with LiveServer(lambda: "custom_metric 42\n") as srv:
            _, text = _scrape(srv.url)
            assert text == "custom_metric 42\n"

    def test_unknown_path_404(self):
        from urllib.error import HTTPError
        from repro.obs.live import LiveServer
        with LiveServer(lambda: {}) as srv:
            with pytest.raises(HTTPError) as exc:
                _scrape(f"http://{srv.host}:{srv.port}/nope")
            assert exc.value.code == 404

    def test_sampler_exception_is_500_not_fatal(self):
        from urllib.error import HTTPError
        from repro.obs.live import LiveServer
        boom = {"on": True}

        def sampler():
            if boom["on"]:
                raise RuntimeError("sampler died")
            return {"epoch": 1}

        with LiveServer(sampler) as srv:
            with pytest.raises(HTTPError) as exc:
                _scrape(srv.url)
            assert exc.value.code == 500
            boom["on"] = False  # server survives a failed scrape
            status, text = _scrape(srv.url)
            assert status == 200 and "repro_live_epoch 1" in text


class TestLiveEndpointDuringFaultedFit:
    """The headline invariant: scrape a *recovering* run mid-flight.

    The driver blocks inside the single fit dispatch while a planned
    worker kill, backoff, respawn, and resume play out; the endpoint
    must keep serving coherent exposition text the whole time with zero
    extra dispatches, and the recovered run must stay bit-equal to the
    fault-free one.
    """

    @pytest.mark.parametrize("transport", ["shm", "tcp"])
    def test_scrape_mid_recovery_bit_equal(self, ds, tmp_path, transport):
        import threading
        from repro.obs.live import LiveServer

        kw = {"variant": "ghost", "partition": "multilevel"}
        losses0, digest0, _, _ = _run_process(
            ds, "1d", 4, 2, transport, False, kw)

        algo = make_algorithm(
            "1d", 4, ds, hidden=HIDDEN, seed=0, backend="process",
            workers=2, transport=transport,
            faults="kill:worker=1,epoch=1,attempt=1", max_restarts=3, **kw)
        scrapes = []
        stop = threading.Event()

        def scrape_loop(url):
            while not stop.is_set():
                try:
                    scrapes.append(_scrape(url)[1])
                except OSError:
                    pass
                stop.wait(0.01)

        try:
            with LiveServer(algo.rt.live_sample) as srv:
                t = threading.Thread(target=scrape_loop, args=(srv.url,),
                                     daemon=True)
                t.start()
                try:
                    hist = algo.fit(
                        ds.features, ds.labels, EPOCHS,
                        checkpoint_path=str(tmp_path / "ck.npz"),
                        checkpoint_every=1)
                finally:
                    stop.set()
                    t.join(timeout=5)
                final = _scrape(srv.url)[1]
            digest = ledger_digest(algo.rt.tracker)
            stats = algo.rt.backend_stats(workers=False)
        finally:
            algo.rt.close()

        assert list(hist.losses) == losses0
        assert digest == digest0
        assert stats["restarts"] >= 1
        assert stats["fit_dispatches"] == 1  # scraping added no dispatch
        # Every in-flight scrape rendered coherent exposition text.
        assert scrapes
        for text in scrapes:
            assert "repro_up 1" in text
            assert "repro_workers 2" in text
            assert "repro_recovering" in text
        # The post-fit scrape reflects the completed, recovered run.
        assert "repro_restarts_total 1" in final
        assert "repro_recovering 0" in final
        assert "repro_live_epoch 3" in final

    def test_virtual_runtime_live_sample(self, ds):
        # Before start() / on the virtual path there is still a sample:
        # worker count and a recovering=False flag, so the endpoint can
        # come up before the first dispatch.
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0,
                              backend="process", workers=2)
        try:
            sample = algo.rt.live_sample()
            assert sample["workers"] == 2
            assert sample["recovering"] is False
        finally:
            algo.rt.close()


# --------------------------------------------------------------------- #
# ISSUE 9: per-kernel compute/memory profiling
# --------------------------------------------------------------------- #
PROFILED_KERNELS = {"spmm", "gemm.forward", "gemm.wgrad", "gemm.hgrad",
                    "reduce.fold"}


def _run_profiled(ds, name, transport, kw):
    algo = make_algorithm(name, 4, ds, hidden=HIDDEN, seed=0,
                          backend="process", workers=2,
                          transport=transport, **kw)
    try:
        hist = algo.fit(ds.features, ds.labels, EPOCHS,
                        trace={"profile": True})
        digest = ledger_digest(algo.rt.tracker)
        stats = algo.rt.backend_stats(workers=False)
        return list(hist.losses), digest, algo.last_trace, stats
    finally:
        algo.rt.close()


class TestKernelProfiling:
    def test_profiler_unit_accumulates(self):
        from repro.obs import profile as profile_mod
        prof = profile_mod.KernelProfiler()
        prof.add("spmm", 0.5, 100.0, 800.0, 10, 4, 8)
        prof.add("spmm", 0.5, 100.0, 800.0, 10, 4, 8)
        snap = prof.snapshot()
        k = snap["kernels"]["spmm"]
        assert k["calls"] == 2
        assert k["flops"] == pytest.approx(200.0)
        assert k["bytes"] == pytest.approx(1600.0)
        assert k["intensity"] == pytest.approx(200.0 / 1600.0)
        assert k["extras"] == [20, 8, 16]
        assert snap["peak_rss_bytes"] >= 0

    def test_virtual_profiled_bit_equal(self, ds):
        from repro.obs import profile as profile_mod
        plain = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist0 = plain.fit(ds.features, ds.labels, EPOCHS)
        digest0 = ledger_digest(plain.rt.tracker)

        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS,
                              profile=True)
        assert profile_mod.ACTIVE is None  # torn down
        assert list(hist.losses) == list(hist0.losses)
        assert ledger_digest(algo.rt.tracker) == digest0
        prof = tr.profile_summary()
        assert prof is not None
        assert PROFILED_KERNELS <= set(prof["kernels"])
        for k in prof["kernels"].values():
            assert k["calls"] > 0 and k["seconds"] >= 0.0
            assert k["flops"] >= 0.0 and k["bytes"] > 0.0

    def test_unprofiled_trace_has_no_summary(self, ds):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        _, tr = traced_fit(algo, ds.features, ds.labels, 1)
        assert tr.profile_summary() is None

    @pytest.mark.parametrize("transport", ["shm", "tcp"])
    def test_process_profiled_bit_equal(self, ds, transport):
        kw = {"variant": "ghost", "partition": "multilevel"}
        losses0, digest0, _, _ = _run_process(
            ds, "1d", 4, 2, transport, False, kw)
        losses, digest, tr, stats = _run_profiled(ds, "1d", transport, kw)

        assert losses == losses0
        assert digest == digest0
        assert stats["fit_dispatches"] == 1
        prof = tr.profile_summary()
        assert prof is not None and prof["workers"] == 2
        assert PROFILED_KERNELS <= set(prof["kernels"])
        if transport == "shm":
            # shm workers fold their payload-arena gauges in; the tcp
            # channel has no arena, so the key must be absent.
            arena = prof["arena"]
            assert arena["size_bytes"] > 0
            assert 0.0 <= arena["occupancy"] <= 1.0
        else:
            assert "arena" not in prof

    def test_profile_survives_chrome_round_trip(self, ds, tmp_path):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS,
                              profile=True)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7,
                  "vertices": ds.adjacency.nrows, "degree": 5.0,
                  "features": 10, "classes": 3, "backend": "virtual",
                  "machine": algo.rt.profile.name}
        doc = export_chrome_trace(
            tr, str(tmp_path / "t.json"),
            extra=build_trace_meta(config, hist, tr, 0.25))
        assert validate_chrome_trace(doc) == []
        back = trace_from_chrome(doc)
        a, b = tr.profile_summary(), back.profile_summary()
        assert b is not None
        assert set(b["kernels"]) == set(a["kernels"])
        for name in a["kernels"]:
            assert b["kernels"][name]["calls"] == a["kernels"][name]["calls"]

    def test_cat_seconds_running_totals(self):
        rec = SpanRecorder(capacity=4)
        rec.record("a", "spmm", 0.0, 1.5)
        rec.record("b", "spmm", 2.0, 2.5)
        rec.record("c", "dcomm", 0.0, 1.0)
        rec.record("weird", "not-a-category", 0.0, 9.0)
        totals = rec.category_seconds()
        assert totals["spmm"] == pytest.approx(2.0)
        assert totals["dcomm"] == pytest.approx(1.0)
        assert "not-a-category" not in totals
        # Running totals survive drain (livestats publishes mid-run).
        rec.drain()
        assert rec.category_seconds()["spmm"] == pytest.approx(2.0)


# --------------------------------------------------------------------- #
# ISSUE 9: drift report's compute column + dropped-span surfacing
# --------------------------------------------------------------------- #
class TestComputeReport:
    def _payload(self, ds, tmp_path):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS,
                              profile=True)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7,
                  "vertices": ds.adjacency.nrows, "degree": 5.0,
                  "features": 10, "classes": 3, "backend": "virtual",
                  "machine": algo.rt.profile.name}
        return export_chrome_trace(
            tr, str(tmp_path / "t.json"),
            extra=build_trace_meta(config, hist, tr, 0.25))

    def test_compute_section_measured_vs_modeled(self, ds, tmp_path):
        rep = drift_report(self._payload(ds, tmp_path))
        compute = rep["compute"]
        assert compute is not None
        kernels = {row["kernel"] for row in compute["kernels"]}
        assert PROFILED_KERNELS <= kernels
        for row in compute["kernels"]:
            assert row["calls"] > 0
            assert row["measured_s"] >= 0.0
            if row["modeled_s"] and row["measured_s"]:
                assert row["drift"] == pytest.approx(
                    row["measured_s"] / row["modeled_s"])
        assert compute["peak_rss_bytes"] > 0
        text = format_drift_report(rep)
        assert "kernel compute" in text
        assert "peak RSS" in text

    def test_unprofiled_report_has_no_compute(self, ds, tmp_path):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7,
                  "vertices": ds.adjacency.nrows, "degree": 5.0,
                  "features": 10, "classes": 3, "backend": "virtual",
                  "machine": algo.rt.profile.name}
        doc = export_chrome_trace(
            tr, str(tmp_path / "t.json"),
            extra=build_trace_meta(config, hist, tr, 0.25))
        rep = drift_report(doc)
        assert rep["compute"] is None
        assert rep["dropped_spans"] == 0

    def test_dropped_spans_surfaced_with_warning(self, ds, tmp_path):
        payload = self._payload(ds, tmp_path)
        payload["repro"]["workers"]["0"]["dropped"] = 5
        rep = drift_report(payload)
        assert rep["dropped_spans"] == 5
        assert any("WARNING" in n and "dropped" in n for n in rep["notes"])
        assert "WARNING" in format_drift_report(rep)


# --------------------------------------------------------------------- #
# ISSUE 9: trace diffing + CLI wiring
# --------------------------------------------------------------------- #
class TestTraceDiff:
    def _payload(self, ds, tmp_path, name="t.json"):
        algo = make_algorithm("1d", 4, ds, hidden=HIDDEN, seed=0)
        hist, tr = traced_fit(algo, ds.features, ds.labels, EPOCHS)
        config = {"algorithm": "1d", "gpus": 4, "hidden": HIDDEN,
                  "epochs": EPOCHS, "seed": 7,
                  "vertices": ds.adjacency.nrows, "degree": 5.0,
                  "features": 10, "classes": 3, "backend": "virtual",
                  "machine": algo.rt.profile.name}
        path = tmp_path / name
        export_chrome_trace(
            tr, str(path), extra=build_trace_meta(config, hist, tr, 0.25))
        return path

    @staticmethod
    def _scaled(path, out, factor):
        """A copy of a trace with every timestamp dilated by ``factor``.

        Scaling ts *and* dur preserves nesting/containment exactly, so
        every category's per-epoch seconds grow by the same factor.
        """
        payload = json.load(open(path))
        for ev in payload["traceEvents"]:
            if "ts" in ev:
                ev["ts"] = float(ev["ts"]) * factor
            if "dur" in ev:
                ev["dur"] = float(ev["dur"]) * factor
        out.write_text(json.dumps(payload))
        return out

    def test_identical_traces_zero_drift(self, ds, tmp_path):
        from repro.obs.diff import diff_traces
        payload = json.load(open(self._payload(ds, tmp_path)))
        rep = diff_traces(payload, payload)
        assert rep["verdict"] == "ok"
        assert rep["max_drift"] == 0.0
        assert rep["regressions"] == []

    def test_dilated_trace_flags_regression(self, ds, tmp_path):
        from repro.obs.diff import diff_traces
        a_path = self._payload(ds, tmp_path)
        b_path = self._scaled(a_path, tmp_path / "slow.json", 3.0)
        rep = diff_traces(json.load(open(a_path)), json.load(open(b_path)),
                          min_seconds=0.0)
        assert rep["verdict"] == "regression"
        assert rep["regressions"]
        for row in rep["categories"]:
            if row.get("ratio") is not None:
                assert row["ratio"] == pytest.approx(3.0, rel=1e-6)

    def test_speedup_is_not_a_regression(self, ds, tmp_path):
        from repro.obs.diff import diff_traces
        a_path = self._payload(ds, tmp_path)
        b_path = self._scaled(a_path, tmp_path / "fast.json", 0.25)
        rep = diff_traces(json.load(open(a_path)), json.load(open(b_path)),
                          min_seconds=0.0)
        assert rep["verdict"] == "ok"  # only slowdowns fail the gate

    def test_cli_self_diff_ok(self, ds, tmp_path, capsys):
        from repro.cli import main
        path = str(self._payload(ds, tmp_path))
        out_json = str(tmp_path / "diff.json")
        assert main(["obs", "diff", path, path, "--json", out_json]) == 0
        assert "verdict OK" in capsys.readouterr().out
        doc = json.load(open(out_json))
        assert doc["verdict"] == "ok" and doc["max_drift"] == 0.0

    def test_cli_diff_flags_regression(self, ds, tmp_path, capsys):
        from repro.cli import main
        a = self._payload(ds, tmp_path)
        b = self._scaled(a, tmp_path / "slow.json", 3.0)
        rc = main(["obs", "diff", str(a), str(b), "--min-seconds", "0"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_diff_rejects_invalid(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": "nope"}))
        assert main(["obs", "diff", str(bad), str(bad)]) == 2


class TestObsEventsCli:
    def test_train_writes_chained_log(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.events import read_event_log
        ev_path = str(tmp_path / "ev.jsonl")
        rc = main(["train", "--algorithm", "1d", "--gpus", "4",
                   "--epochs", "2", "--hidden", "8",
                   "--vertices", "96", "--degree", "5",
                   "--events", ev_path, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["events_path"] == ev_path
        events = read_event_log(ev_path)
        types = [e["type"] for e in events]
        assert types[0] == "run_start"
        assert types[-1] == "run_end"
        assert types.count("epoch") == 2
        assert events[-1]["data"]["status"] == "ok"

    def test_validate_events_accepts_then_rejects(self, tmp_path, capsys):
        from repro.cli import main
        ev_path = tmp_path / "ev.jsonl"
        assert main(["train", "--algorithm", "1d", "--gpus", "4",
                     "--epochs", "2", "--hidden", "8",
                     "--vertices", "96", "--degree", "5",
                     "--events", str(ev_path)]) == 0
        capsys.readouterr()
        assert main(["obs", "validate-events", str(ev_path)]) == 0
        assert "chain intact" in capsys.readouterr().out

        lines = ev_path.read_text().splitlines()
        ev_path.write_text("\n".join(lines[:1] + lines[2:]) + "\n")
        assert main(["obs", "validate-events", str(ev_path)]) == 1

    def test_train_metrics_port_virtual(self, tmp_path, capsys):
        # --metrics-port 0 binds an ephemeral port on the virtual path;
        # the server must come up and tear down cleanly around fit.
        from repro.cli import main
        rc = main(["train", "--algorithm", "1d", "--gpus", "4",
                   "--epochs", "2", "--hidden", "8",
                   "--vertices", "96", "--degree", "5",
                   "--metrics-port", "0", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["losses"]) == 2


# --------------------------------------------------------------------- #
# ISSUE 9 satellite: recovery counters through metrics_from_trace on tcp
# --------------------------------------------------------------------- #
class TestRecoveryMetricsTcp:
    def test_faulted_tcp_run_exports_recovery_counters(self, ds, tmp_path):
        kw = {"variant": "ghost", "partition": "multilevel"}
        algo = make_algorithm(
            "1d", 4, ds, hidden=HIDDEN, seed=0, backend="process",
            workers=2, transport="tcp",
            faults="kill:worker=1,epoch=1,attempt=1", max_restarts=3, **kw)
        try:
            hist = algo.fit(ds.features, ds.labels, EPOCHS,
                            trace=True,
                            checkpoint_path=str(tmp_path / "ck.npz"),
                            checkpoint_every=1)
            tr = algo.last_trace
            stats = algo.rt.backend_stats(workers=False)
        finally:
            algo.rt.close()
        assert stats["restarts"] >= 1
        text = metrics_from_trace(tr, hist, backend_stats=stats).render()
        assert "repro_restarts_total 1" in text
        assert "repro_recovery_dispatches_total" in text
        assert "repro_failure_detect_seconds_total" in text
        assert "repro_checkpoints_written_total" in text
