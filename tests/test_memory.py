"""Per-rank memory models and the paper's Section V-C feasibility table."""

import pytest

from repro.analysis.memory import (
    V100_BYTES,
    feasibility_table,
    memory_15d,
    memory_1d,
    memory_2d,
    memory_3d,
)

N, NNZ = 1_000_000, 16_000_000
WIDTHS = (128, 16, 16, 32)


class TestFeasibilityTable:
    def test_paper_oom_pattern(self):
        """Section V-C: 'We do not report numbers for Amazon on 4 devices
        or numbers for Protein on 4 or 16 devices as the data does not
        fit in memory for those configurations.'"""
        table = feasibility_table()
        assert table["reddit"][4] is True
        assert table["amazon"][4] is False
        assert table["amazon"][16] is True
        assert table["protein"][4] is False
        assert table["protein"][16] is False
        assert table["protein"][36] is True
        assert table["protein"][64] is True
        assert table["protein"][100] is True

    def test_reddit_fits_everywhere(self):
        table = feasibility_table()
        assert all(table["reddit"].values())


class TestScalingBehaviour:
    def test_2d_memory_scales_inverse_p(self):
        m4 = memory_2d(N, NNZ, WIDTHS, 4)
        m64 = memory_2d(N, NNZ, WIDTHS, 64)
        # Near-perfect 1/P scaling ("consumes optimal memory").
        assert m4.total_bytes / m64.total_bytes == pytest.approx(16, rel=0.3)

    def test_1d_memory_floor_is_full_dense_matrix(self):
        """The gathered H never shrinks: 1D memory plateaus."""
        m4 = memory_1d(N, NNZ, WIDTHS, 4)
        m256 = memory_1d(N, NNZ, WIDTHS, 256)
        assert m256.buffer_bytes == m4.buffer_bytes
        assert m256.total_bytes > 0.3 * m4.total_bytes

    def test_15d_memory_grows_with_replication(self):
        """Section IV-B: the c-fold dense replication."""
        p = 64
        m1 = memory_15d(N, NNZ, WIDTHS, p, 1)
        m4 = memory_15d(N, NNZ, WIDTHS, p, 4)
        m16 = memory_15d(N, NNZ, WIDTHS, p, 16)
        assert m1.dense_bytes < m4.dense_bytes < m16.dense_bytes

    def test_3d_partial_replication(self):
        """Section IV-D: partials replicate P^(1/3)-fold relative to the
        owned share."""
        p = 64  # s = 4
        m = memory_3d(N, NNZ, WIDTHS, p)
        owned_share = 4 * (N / 16) * (max(WIDTHS) / 4)  # fp32 n/s^2 x f/s
        assert m.buffer_bytes == pytest.approx(4 * owned_share)

    def test_2d_beats_1d_at_scale(self):
        m1 = memory_1d(N, NNZ, WIDTHS, 64)
        m2 = memory_2d(N, NNZ, WIDTHS, 64)
        assert m2.total_bytes < m1.total_bytes


class TestValidation:
    def test_2d_requires_square(self):
        with pytest.raises(ValueError, match="square"):
            memory_2d(N, NNZ, WIDTHS, 10)

    def test_3d_requires_cube(self):
        with pytest.raises(ValueError, match="cube"):
            memory_3d(N, NNZ, WIDTHS, 16)

    def test_15d_replication_divides(self):
        with pytest.raises(ValueError, match="divide"):
            memory_15d(N, NNZ, WIDTHS, 8, 3)

    def test_estimate_fields(self):
        m = memory_2d(N, NNZ, WIDTHS, 16)
        assert m.total_gib > 0
        assert m.total_bytes == pytest.approx(
            (m.sparse_bytes + m.dense_bytes + m.buffer_bytes)
            * m.overhead_factor
        )
        assert m.fits(capacity_bytes=float("inf"))
