"""Machine profiles and bandwidth-tier selection."""

import pytest

from repro.config import (
    COMMODITY,
    SUMMIT,
    ZERO_COST,
    MachineProfile,
    get_profile,
    register_profile,
)


class TestProfiles:
    def test_summit_is_default(self):
        assert get_profile(None) is SUMMIT

    def test_lookup_by_name(self):
        assert get_profile("summit") is SUMMIT
        assert get_profile("commodity") is COMMODITY
        assert get_profile("zero-cost") is ZERO_COST

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown machine profile"):
            get_profile("does-not-exist")

    def test_register_custom_profile(self):
        custom = MachineProfile(name="custom-test", alpha=1e-6)
        register_profile(custom)
        assert get_profile("custom-test") is custom

    def test_zero_cost_profile_is_free(self):
        assert ZERO_COST.alpha == 0.0
        assert ZERO_COST.beta == 0.0
        assert ZERO_COST.kernel_launch_overhead == 0.0


class TestBandwidthTiers:
    def test_intrasocket_span_uses_nvlink(self):
        # 3 GPUs fit one Summit socket -> NVLink tier (fastest).
        assert SUMMIT.beta_for_span(3) == SUMMIT.beta_intranode

    def test_intranode_span_uses_xbus(self):
        assert SUMMIT.beta_for_span(6) == SUMMIT.beta_intersocket

    def test_internode_span_uses_ib(self):
        assert SUMMIT.beta_for_span(7) == SUMMIT.beta
        assert SUMMIT.beta_for_span(100) == SUMMIT.beta

    def test_tiers_are_ordered(self):
        # NVLink faster than X-bus faster than InfiniBand.
        assert SUMMIT.beta_intranode < SUMMIT.beta_intersocket < SUMMIT.beta

    def test_alpha_tiers(self):
        assert SUMMIT.alpha_for_span(4) == SUMMIT.alpha_intranode
        assert SUMMIT.alpha_for_span(64) == SUMMIT.alpha
        assert SUMMIT.alpha_intranode < SUMMIT.alpha

    def test_summit_published_bandwidths(self):
        # Section V-B: 23 GB/s inter-node, 100 GB/s NVLink, 64 GB/s X-bus.
        assert SUMMIT.beta == pytest.approx(1.0 / 23e9)
        assert SUMMIT.beta_intranode == pytest.approx(1.0 / 100e9)
        assert SUMMIT.beta_intersocket == pytest.approx(1.0 / 64e9)
