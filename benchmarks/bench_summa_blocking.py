"""Algorithm 2 ablation: the SUMMA blocking parameter ``b``.

Algorithm 2 iterates in blocks of ``b`` inner indices.  Smaller ``b``
means more, smaller broadcasts: byte totals stay fixed while message
counts (latency exposure) grow -- the trade that makes Summit's
latency-bound regime matter (Section VI).  We execute the 2D algorithm at
several ``b`` and confirm identical numerics, identical bytes, growing
message counts.
"""

import numpy as np

from repro.dist import make_algorithm
from repro.graph import make_synthetic

from benchmarks.helpers import attach, print_table

P = 16
BLOCKS = (None, 64, 16, 4)


def bench_summa_blocking_parameter(benchmark):
    ds = make_synthetic(n=384, avg_degree=6, f=24, n_classes=4, seed=0)
    rows = []
    losses = {}
    bytes_by_b = {}
    msgs_by_b = {}
    scomm_by_b = {}
    for b in BLOCKS:
        algo = make_algorithm("2d", P, ds, hidden=16, seed=0, summa_block=b)
        algo.setup(ds.features, ds.labels)
        st = algo.train_epoch(0)
        total_msgs = algo.rt.tracker.total_messages()
        losses[b] = st.loss
        bytes_by_b[b] = st.dcomm_bytes
        scomm_by_b[b] = st.scomm_bytes
        msgs_by_b[b] = total_msgs
        rows.append(
            (
                "full block" if b is None else b,
                len(algo.stages), st.dcomm_bytes, st.scomm_bytes,
                total_msgs, round(st.modeled_seconds * 1e3, 3),
            )
        )
    print_table(
        f"SUMMA blocking parameter b at P={P} (n=384, executed)",
        ("b", "stages", "dcomm bytes", "scomm bytes", "messages",
         "epoch ms"),
        rows,
    )
    print(
        "\ndense bytes are invariant in b; sparse bytes grow slightly as b "
        "shrinks\n(every extra CSR piece ships its own row-pointer header); "
        "message count --\nthe latency exposure -- grows steeply."
    )

    ref = losses[None]
    for b, loss in losses.items():
        assert np.isclose(loss, ref), "blocking must not change numerics"
    # Dense payload bytes identical; CSR header overhead and message
    # counts grow as b shrinks.
    assert bytes_by_b[64] == bytes_by_b[4]
    assert scomm_by_b[4] > scomm_by_b[64]
    assert msgs_by_b[4] > msgs_by_b[64] > msgs_by_b[None]

    algo = make_algorithm("2d", P, ds, hidden=16, seed=0, summa_block=16)
    algo.setup(ds.features, ds.labels)
    benchmark(algo.train_epoch)
    attach(
        benchmark,
        messages={str(k): v for k, v in msgs_by_b.items()},
    )
