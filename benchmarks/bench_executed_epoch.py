"""Executed-epoch wall clock: the virtual runtime really moving blocks.

The simulator (``repro.simulate``) predicts P=16384 in a second, but the
paper's *claims* live in executed runs: the virtual runtime moves every
per-rank block and the outputs are asserted against the serial reference.
This benchmark times that executed path -- one full charged training epoch
(``DistAlgorithm.train_epoch``) -- for all four algorithm families across
rank counts, including the P=64 1D run that was impractical before the
fast-path work (comm plans, copy-on-write collectives, workspace reuse).

Two invariants are attached alongside the timings:

* ``comm_bytes`` per (algorithm, P) -- the exact per-epoch ledger bytes,
  which the fast path must keep **identical** (the alpha-beta charges are
  the correctness oracle; only wall-clock may change);
* ``speedup_vs_pre_opt`` -- measured mean epoch seconds against the
  pre-optimization baseline captured on this same machine/workload
  immediately before the fast-path landed (PR 3).
"""

from __future__ import annotations

import time

from benchmarks.helpers import attach, print_table

#: Shared workload: a GNN-shaped synthetic graph, 3-layer GCN.
GRAPH = dict(n=2048, avg_degree=16, f=64, n_classes=8, seed=0)
HIDDEN = 32
EPOCHS = 8  # timed epochs per configuration (after one warm-up)

#: (algorithm, P, extra kwargs).  2D needs square P (or an explicit
#: grid); 3D needs cubic P -- hence 4x2 at P=8 and 27 instead of 16.
CONFIGS = {
    "1d": [(4, {}), (8, {}), (16, {}), (64, {})],
    "1.5d": [(4, {"replication": 2}), (8, {"replication": 2}),
             (16, {"replication": 4})],
    "2d": [(4, {}), (8, {"grid": (4, 2)}), (16, {})],
    "3d": [(8, {}), (27, {})],
}

#: Mean executed-epoch seconds measured on the pre-optimization tree
#: (commit 3245033, same GRAPH/HIDDEN workload).  Captured with a paired
#: harness that interleaved pre- and post-optimization runs on the same
#: machine state (3 reps x 4 epochs, best rep), so the ratio is robust
#: to background load drift.  The fast path is judged against these:
#: >= 3x lower mean_s per executed epoch for at least three of the four
#: algorithm families at their headline rank counts.
PRE_OPT_MEAN_S = {
    ("1d", 4): 0.01176,
    ("1d", 8): 0.02308,
    ("1d", 16): 0.04982,
    ("1d", 64): 0.11334,
    ("1.5d", 4): 0.01120,
    ("1.5d", 8): 0.01329,
    ("1.5d", 16): 0.02082,
    ("2d", 4): 0.01232,
    ("2d", 8): 0.02063,
    ("2d", 16): 0.03937,
    ("3d", 8): 0.01862,
    ("3d", 27): 0.04981,
}


def _build(algorithm: str, p: int, extra: dict):
    from repro.dist import make_algorithm
    from repro.graph import make_synthetic

    ds = make_synthetic(**GRAPH)
    algo = make_algorithm(algorithm, p, ds, hidden=HIDDEN, **extra)
    algo.setup(ds.features, ds.labels)
    return algo


def _time_epochs(algo, epochs: int = EPOCHS):
    """(mean wall seconds per epoch, per-epoch comm bytes) after warm-up."""
    algo.train_epoch(0)  # warm-up: caches, scipy wrappers, workspaces
    stats = None
    t0 = time.perf_counter()
    for e in range(epochs):
        stats = algo.train_epoch(e + 1)
    mean_s = (time.perf_counter() - t0) / epochs
    return mean_s, stats.comm_bytes


def _run_family(benchmark, algorithm: str):
    rows = []
    per_p_mean = {}
    per_p_bytes = {}
    algos = {}
    for p, extra in CONFIGS[algorithm]:
        algos[p] = _build(algorithm, p, extra)
        mean_s, comm_bytes = _time_epochs(algos[p])
        per_p_mean[p] = mean_s
        per_p_bytes[p] = comm_bytes
        baseline = PRE_OPT_MEAN_S.get((algorithm, p))
        speedup = (baseline / mean_s) if baseline else None
        rows.append(
            (p, f"{mean_s * 1e3:.2f}", comm_bytes,
             f"{speedup:.2f}x" if speedup else "n/a")
        )
    print_table(
        f"executed epoch -- {algorithm}",
        ("P", "ms/epoch", "comm bytes/epoch", "speedup vs pre-opt"),
        rows,
    )
    # The headline configuration (largest benched P) drives the harness
    # timing so BENCH_dist.json's mean_s tracks the executed hot path.
    headline = max(per_p_mean)
    epoch = [0]

    def one_epoch():
        epoch[0] += 1
        return algos[headline].train_epoch(epoch[0])

    benchmark(one_epoch)
    attach(
        benchmark,
        algorithm=algorithm,
        headline_p=headline,
        mean_s_by_p={str(p): per_p_mean[p] for p in per_p_mean},
        comm_bytes_by_p={str(p): per_p_bytes[p] for p in per_p_bytes},
        pre_opt_mean_s_by_p={
            str(p): PRE_OPT_MEAN_S.get((algorithm, p))
            for p, _ in CONFIGS[algorithm]
        },
        speedup_vs_pre_opt={
            str(p): (PRE_OPT_MEAN_S[(algorithm, p)] / per_p_mean[p])
            for p, _ in CONFIGS[algorithm]
            if PRE_OPT_MEAN_S.get((algorithm, p))
        },
    )


def bench_executed_epoch_1d(benchmark):
    _run_family(benchmark, "1d")


def bench_executed_epoch_15d(benchmark):
    _run_family(benchmark, "1.5d")


def bench_executed_epoch_2d(benchmark):
    _run_family(benchmark, "2d")


def bench_executed_epoch_3d(benchmark):
    _run_family(benchmark, "3d")
