"""Partition-aware 1D training: block vs multilevel ledger bytes.

The Section IV-A.8 reproduction, executed: train the 1D ``ghost``
variant at P=8 under the contiguous block partition and under the
multilevel (Metis-like) partition, and record what the ledger actually
charges.  The ghost exchange ships exactly ``r_i * f * itemsize`` bytes
per rank per layer (``r_i`` = distinct remote neighbours, the
``edgecut_P`` vector), so the block-vs-multilevel byte gap IS the
partitioner's communication win.

Two graphs: the Reddit stand-in (scale-free and dense -- against the
contiguous block baseline, which concentrates the R-MAT hubs in one
part, multilevel mostly repairs the *max-process* cut while the total
cut barely moves; the paper's 72%-total/29%-max numbers compare against
a *random* baseline) and a shuffled community SBM (where partitioning
slashes both cuts and per-epoch dcomm bytes drop ~40%).

Results land in ``BENCH_dist.json`` under a top-level
``partition_epoch`` section (via the harness's ``bench_section``
hoisting); ``check_regression.py`` asserts the multilevel-beats-block
invariant on every fresh report.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import attach, print_table

P = 8
EPOCHS = 3
HIDDEN = 16
SCALE = 512  # reddit stand-in divisor -> ~455 vertices


def _graphs():
    from repro.graph import make_standin
    from repro.graph.generators import stochastic_block_model
    from repro.graph.normalize import gcn_normalize

    ds = make_standin("reddit", scale_divisor=SCALE, seed=0)
    yield (ds.name, ds.adjacency, ds.features, ds.labels,
           ds.layer_widths(hidden=HIDDEN))

    # Communities scrambled across vertex ids: the contiguous block
    # baseline sees a random-looking graph, while the multilevel
    # partitioner rediscovers the hidden structure -- the regime where
    # partitioning pays (the un-shuffled SBM would make block optimal).
    from repro.graph.permutation import random_permutation

    sbm = stochastic_block_model(
        (128,) * P, p_in=0.08, p_out=0.002, seed=0
    ).permute(random_permutation(128 * P, seed=1))
    sbm = gcn_normalize(sbm)
    n = sbm.nrows
    rng = np.random.default_rng(0)
    features = rng.standard_normal((n, 32))
    labels = rng.integers(0, 8, size=n, dtype=np.int64)
    yield ("sbm-8x128-shuffled", sbm, features, labels, (32, HIDDEN, 8))


def _run(name, adj, features, labels, widths, kind):
    from repro.comm.runtime import VirtualRuntime
    from repro.dist import Distribution
    from repro.dist.algo_1d import DistGCN1D
    from repro.partition import edge_cut_stats

    dist = Distribution.build(kind, adj, P, seed=0)
    rt = VirtualRuntime.make_1d(P)
    algo = DistGCN1D(rt, adj, widths, seed=0, variant="ghost",
                     distribution=dist)
    algo.setup(features, labels)
    stats = algo.train_epoch(0)
    cut = edge_cut_stats(adj, dist.assignment, P)
    ghosts_total = int(sum(algo._ghost.ghost_rows))
    expansion = sum(
        ghosts_total * f * algo.WB
        for f in list(widths[:-1]) + list(widths[1:])
    )
    return {
        "partition": kind,
        "dcomm_bytes": int(stats.dcomm_bytes),
        "expansion_bytes": int(expansion),
        "max_rank_comm_bytes": int(stats.max_rank_comm_bytes),
        "total_cut_edges": int(cut.total_cut_edges),
        "max_part_cut_edges": int(cut.max_part_cut_edges),
        "edgecut_metric": int(cut.edgecut_metric),
        "loss": float(stats.loss),
    }, algo


def bench_partition_epoch(benchmark):
    entries = []
    rows = []
    timed_algo = None
    for name, adj, features, labels, widths in _graphs():
        block, _ = _run(name, adj, features, labels, widths, "block")
        multilevel, algo = _run(name, adj, features, labels, widths,
                                "multilevel")
        timed_algo = algo  # time the last (SBM) multilevel config
        entries.append({
            "graph": name,
            "block": block,
            "multilevel": multilevel,
            "bytes_reduction":
                1 - multilevel["dcomm_bytes"] / block["dcomm_bytes"],
            "expansion_reduction":
                1 - multilevel["expansion_bytes"]
                / max(1, block["expansion_bytes"]),
            "total_cut_reduction":
                1 - multilevel["total_cut_edges"]
                / max(1, block["total_cut_edges"]),
            "max_cut_reduction":
                1 - multilevel["max_part_cut_edges"]
                / max(1, block["max_part_cut_edges"]),
        })
        for r in (block, multilevel):
            rows.append(
                (name, r["partition"], r["dcomm_bytes"],
                 r["expansion_bytes"], r["max_rank_comm_bytes"],
                 r["total_cut_edges"], r["max_part_cut_edges"],
                 r["edgecut_metric"])
            )

    def timed_epochs():
        losses = []
        for e in range(EPOCHS):
            losses.append(timed_algo.train_epoch(e + 1).loss)
        return losses

    benchmark(timed_epochs)

    print_table(
        f"partition-aware 1D ghost epoch at P={P}",
        ("graph", "partition", "dcomm B", "expansion B", "max/rank B",
         "total cut", "max cut", "edgecut_P"),
        rows,
    )
    attach(
        benchmark,
        bench_section="partition_epoch",
        p=P,
        variant="ghost",
        entries=entries,
        note="ghost expansion bytes == sum_i r_i * f * 8 exactly "
             "(tests/test_partition_training.py).  IV-A.8's total-vs-max "
             "gap shows up mirrored here: against the CONTIGUOUS block "
             "baseline (which parks the R-MAT hubs in one part) "
             "multilevel slashes the max-process cut while the total "
             "cut barely moves; the paper's 72%/29% numbers compare "
             "against a RANDOM baseline.  On the shuffled SBM both "
             "collapse and dcomm bytes drop ~40%.",
    )
