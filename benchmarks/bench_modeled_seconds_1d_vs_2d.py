"""Modeled epoch seconds: 1D vs 2D, and why the paper builds 2D anyway.

The paper's crossover claim (Section VI-d) is about *words*; this bench
puts the two implementable algorithms side by side in modeled *seconds*
and *memory*, reproducing three of its arguments at the published protein
size:

1. **Memory** -- the broadcast/all-gather 1D algorithm needs the full
   dense ``n x f`` activation on every rank, while 2D stores ``n f / P``
   ("our 2D algorithm ... consumes optimal memory").  At Amazon/Protein
   scale that is the difference between fitting a 16 GB V100 and not (the
   paper: Amazon does not fit at p = 4).
2. **Words** -- 2D moves ``O(sqrt(P))`` fewer words (both models' dcomm
   byte ledgers show it).
3. **Relative costs** -- "more optimized SpMM implementations are
   equivalent from a relative cost perspective to running on clusters
   with slower networks; both increase the relative cost of
   communication, making our reduced-communication algorithms more
   beneficial" (Section I).  On the Summit profile, the cuSPARSE-like
   local-SpMM penalty of hypersparse 2D blocks keeps modeled-seconds
   parity with 1D; on the slower COMMODITY network the 2D seconds
   advantage emerges exactly as the paper predicts.
"""

from repro.analysis.model1d import Model1DEpoch
from repro.analysis.model2d import Model2DEpoch
from repro.config import COMMODITY, SUMMIT
from repro.graph import published_spec

from benchmarks.helpers import attach, print_table


def bench_modeled_1d_vs_2d(benchmark):
    spec = published_spec("protein")
    n, f_in = spec.vertices, spec.features
    fp32 = 4
    rows = []
    ratios = {}
    for profile in (SUMMIT, COMMODITY):
        for p in (16, 64, 256):
            m1 = Model1DEpoch.for_published_dataset(
                "protein", p, profile=profile
            ).run()
            m2 = Model2DEpoch.for_published_dataset(
                "protein", p, profile=profile
            ).run()
            mem1 = n * f_in * fp32 / 2**30          # full H per rank
            mem2 = n * f_in * fp32 / p / 2**30      # 2D block per rank
            ratios[(profile.name, p)] = m2.total_seconds / m1.total_seconds
            rows.append(
                (
                    profile.name, p,
                    round(m1.total_seconds, 2), round(m2.total_seconds, 2),
                    round(m2.total_seconds / m1.total_seconds, 2),
                    f"{mem1:.1f}", f"{mem2:.2f}",
                )
            )
    print_table(
        "Modeled epoch seconds and per-rank dense memory, protein "
        "(published size)",
        ("profile", "P", "1D sec", "2D sec", "2D/1D",
         "1D H0 GiB/rank", "2D GiB/rank"),
        rows,
    )
    print(
        "\n1D's all-gather keeps the FULL dense activation on every rank "
        "(memory does\nnot scale); 2D memory scales 1/P.  On the slower "
        "network, communication\ndominates and 2D's O(sqrt(P)) word saving "
        "shows up in seconds -- the paper's\n'slower networks make our "
        "reduced-communication algorithms more beneficial'."
    )

    # Memory: 1D per-rank dense footprint is P x the 2D one, by layout.
    # Words: 2D moves fewer dense bytes per rank at P >= 64.
    m1 = Model1DEpoch.for_published_dataset("protein", 64).run()
    m2 = Model2DEpoch.for_published_dataset("protein", 64).run()
    assert m2.bytes_by_category["dcomm"] < m1.bytes_by_category["dcomm"]
    # Relative-cost claim: the 2D/1D seconds ratio improves (drops) on the
    # slower network at every P.
    for p in (16, 64, 256):
        assert ratios[("commodity", p)] < ratios[("summit", p)]

    benchmark(
        lambda: Model2DEpoch.for_published_dataset("protein", 64).run()
    )
    attach(
        benchmark,
        ratio_summit_p64=round(ratios[("summit", 64)], 3),
        ratio_commodity_p64=round(ratios[("commodity", 64)], 3),
    )
