"""Figure 3: per-epoch time breakdown of the 2D implementation.

Prints the misc / trpose / dcomm / scomm / spmm stack for every (dataset,
GPU count) bar of the paper's figure, at the published sizes, and checks
the three narrative claims of Section VI:

* Amazon: dense-matrix communication is the most costly mechanism and
  halves when devices quadruple (16 -> 64);
* Reddit: local SpMM dominates and scales well;
* Protein: total communication drops ~1.65x from 36 to 100 GPUs.

The timed kernel is an executed epoch's breakdown measurement on a
stand-in graph.
"""

from repro.analysis.figures import figure3_breakdown
from repro.comm.tracker import Category
from repro.dist import make_algorithm
from repro.graph import make_standin

from benchmarks.helpers import attach, print_table


def bench_fig3_time_breakdown(benchmark):
    points = figure3_breakdown()
    rows = []
    for pt in points:
        bd = pt.breakdown
        rows.append(
            (
                pt.dataset, pt.gpus,
                round(bd["misc"], 4), round(bd["trpose"], 4),
                round(bd["dcomm"], 4), round(bd["scomm"], 4),
                round(bd["spmm"], 4), round(pt.epoch_seconds, 4),
            )
        )
    print_table(
        "Fig. 3 -- 2D per-epoch time breakdown (modeled, published sizes)",
        ("Dataset", "GPUs", "misc", "trpose", "dcomm", "scomm", "spmm",
         "total"),
        rows,
    )

    pts = {(pt.dataset, pt.gpus): pt for pt in points}
    # Amazon: dcomm halves 16 -> 64 (paper: "goes down by 2x given 4x more
    # devices").
    dcomm_ratio = (
        pts[("amazon", 16)].breakdown["dcomm"]
        / pts[("amazon", 64)].breakdown["dcomm"]
    )
    # Protein: comm drops ~ sqrt(100/36) = 1.67x.
    comm36 = pts[("protein", 36)].comm_seconds
    comm100 = pts[("protein", 100)].comm_seconds
    # Reddit: spmm dominates at 4 GPUs.
    reddit4 = pts[("reddit", 4)]
    print(f"\namazon dcomm 16->64 ratio : {dcomm_ratio:.2f} (paper: ~2x)")
    print(f"protein comm 36->100 ratio: {comm36 / comm100:.2f} (paper: 1.65x)")
    print(f"reddit@4 dominant category: {reddit4.dominant_category} "
          f"(paper: spmm)")
    assert 1.6 < dcomm_ratio < 2.4
    assert 1.4 < comm36 / comm100 < 1.95
    assert reddit4.dominant_category == Category.SPMM
    attach(
        benchmark,
        amazon_dcomm_ratio=round(dcomm_ratio, 3),
        protein_comm_ratio=round(comm36 / comm100, 3),
        reddit_dominant=reddit4.dominant_category,
    )

    # Timed kernel: measure a real epoch's breakdown on a stand-in.
    ds = make_standin("amazon", scale_divisor=2048, seed=0)
    algo = make_algorithm("2d", 16, ds, seed=0)
    algo.setup(ds.features, ds.labels)

    def measured_breakdown():
        stats = algo.train_epoch()
        return stats.seconds_by_category

    bd = benchmark(measured_breakdown)
    print_table(
        "Executed 2D epoch breakdown (amazon stand-in, P=16, fp64)",
        ("category", "seconds"),
        sorted(bd.items()),
    )
