"""Section VI-a: why local SpMM does not scale under 2D partitioning.

Reproduces both mechanisms the paper cites:

1. **Hypersparsity** -- 2D blocks have average degree ``d / sqrt(P)``; the
   Yang-et-al calibration (degree 62 -> 8 costs 3x) is checked on the
   performance model and the real local degree decay is measured on a
   partitioned stand-in.
2. **Skinny dense operands** -- the middle layer's dense block goes from
   16 columns at p=1 to 2 at p=64 (the paper's example); the width factor
   quantifies the penalty.

The timed kernel is an actual CSR SpMM at amazon-like block shapes.
"""

import numpy as np

from repro.comm.mesh import Mesh2D
from repro.config import SUMMIT
from repro.graph import make_standin
from repro.sparse import (
    SpmmPerfModel,
    aggregate_block_stats,
    density_factor,
    distribute_sparse_2d,
    spmm,
    width_factor,
)

from benchmarks.helpers import attach, print_table


def bench_spmm_degradation_model(benchmark):
    model = SpmmPerfModel.from_profile(SUMMIT)
    d_amazon = 24.0
    rows = []
    for p in (1, 4, 16, 36, 64):
        s = np.sqrt(p)
        d_local = d_amazon / s
        w_local = 16.0 / s  # the paper's middle-layer example
        rate = model.sustained_flops(d_local, max(w_local, 1e-9))
        rows.append(
            (
                p, round(d_local, 2), round(w_local, 2),
                round(density_factor(d_local), 3),
                round(width_factor(w_local), 3),
                f"{rate:.3e}",
            )
        )
    print_table(
        "SpMM sustained-rate degradation under 2D partitioning "
        "(amazon d=24, middle layer f=16)",
        ("P", "local degree", "local f cols", "density factor",
         "width factor", "FLOP/s"),
        rows,
    )
    ratio = model.speedup_vs(8.0, 62.0, 32)
    print(f"\nYang et al. calibration: rate(d=62)/rate(d=8) = {ratio:.2f} "
          f"(paper quotes 3x)")
    assert abs(ratio - 3.0) < 1e-6

    # Measured local-degree decay on a real partitioned stand-in.
    ds = make_standin("amazon", scale_divisor=512, seed=0)
    d_global = ds.adjacency.average_degree()
    decay_rows = []
    for p in (4, 16, 64):
        mesh = Mesh2D.square(p)
        stats = aggregate_block_stats(distribute_sparse_2d(ds.adjacency, mesh))
        decay_rows.append(
            (
                p,
                round(stats["mean_local_degree"], 2),
                round(d_global / np.sqrt(p), 2),
                round(stats["mean_empty_row_fraction"], 3),
            )
        )
    print_table(
        "Measured 2D block degree decay (amazon stand-in)",
        ("P", "measured local degree", "d/sqrt(P)", "empty row fraction"),
        decay_rows,
    )
    for _, measured, predicted, _ in decay_rows:
        assert abs(measured - predicted) / predicted < 0.2

    # Timed: an actual local SpMM at the p=16 block shape.
    block = distribute_sparse_2d(ds.adjacency, Mesh2D.square(16))[0]
    dense = np.random.default_rng(0).standard_normal((block.ncols, 4))
    benchmark(spmm, block, dense)
    attach(benchmark, yang_ratio=round(ratio, 3))
