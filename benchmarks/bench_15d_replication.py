"""Section IV-B ablation: the 1.5D replication factor c.

The paper discusses 1.5D algorithms and rejects them for GNN training
because "memory is at a premium".  We implement the algorithm and measure
the exact trade at P = 32: per-rank communication follows
``2nf/c + 4nfc/P`` (optimum ``c* = sqrt(P/2) = 4``) while dense activation
memory grows linearly in ``c``.
"""

from repro.analysis.formulas import words_15d
from repro.dist import make_algorithm
from repro.graph import make_synthetic

from benchmarks.helpers import attach, print_table

P = 32
CS = (1, 2, 4, 8, 16)


def bench_15d_replication_sweep(benchmark):
    ds = make_synthetic(n=480, avg_degree=6, f=24, n_classes=4, seed=0)
    n, f = ds.num_vertices, 24.0
    rows = []
    comm = {}
    mem = {}
    for c in CS:
        algo = make_algorithm("1.5d", P, ds, hidden=16, seed=0, replication=c)
        algo.setup(ds.features, ds.labels)
        st = algo.train_epoch(0)
        comm[c] = st.max_rank_comm_bytes
        mem[c] = algo.dense_memory_words_per_rank()
        analytic = words_15d(n, ds.num_edges, f, 3, P, c).words
        rows.append(
            (c, st.max_rank_comm_bytes, f"{analytic:.3e}", mem[c])
        )
    print_table(
        f"1.5D replication sweep at P={P} (n=480, f=24; executed)",
        ("c", "max rank comm bytes", "analytic words", "dense words/rank"),
        rows,
    )
    print("\noptimum c* = sqrt(P/2) = 4; memory grows ~linearly in c "
          "(the cost the paper declines to pay).")

    # Communication is minimised at (or adjacent to) c* = 4.
    best = min(CS, key=lambda c: comm[c])
    assert best in (2, 4, 8)
    assert comm[4] < comm[1]
    # Memory grows monotonically with c.
    assert mem[1] < mem[4] < mem[16]

    algo = make_algorithm("1.5d", P, ds, hidden=16, seed=0, replication=4)
    algo.setup(ds.features, ds.labels)
    benchmark(algo.train_epoch)
    attach(benchmark, comm_by_c=comm, memory_by_c=mem)
