"""The scaling simulator's acceptance benchmark.

Times the full (4 algorithms x 3 machines x P up to 16384) sweep at
Reddit's published size, checks the sub-10-second budget with valid JSON
output, and spot-checks the simulator's headline invariant: predicted
epoch communication volume equals the executed virtual-run ledger.
"""

import json

from repro.comm.tracker import Category
from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.simulate import GraphModel, predict_epoch, sweep

from benchmarks.helpers import attach, print_table


def bench_simulate_full_sweep(benchmark):
    graph = GraphModel.from_published("reddit")
    result = sweep(graph)
    assert result.elapsed_seconds < 10.0
    assert max(result.ps) >= 16384
    doc = json.loads(result.to_json())
    assert doc["schema"] == "repro-sweep/1" and doc["winners"]

    rows = [
        (w["machine"], w["p"], w["algorithm"], round(w["seconds"], 4))
        for w in doc["winners"]
    ]
    print_table(
        "sweep winners -- reddit at published size (predicted s/epoch)",
        ("machine", "P", "winner", "s/epoch"),
        rows,
    )

    # Exactness spot check at an executable scale.
    ds = make_synthetic(n=96, avg_degree=6, f=16, n_classes=4, seed=0)
    gm = GraphModel.from_dataset(ds)
    algo = make_algorithm("2d", 16, ds, hidden=8, seed=0)
    algo.setup(ds.features, ds.labels)
    stats = algo.train_epoch(0)
    point = predict_epoch("2d", gm, 16, hidden=8)
    for cat in Category.COMM:
        assert point.bytes_by_category[cat] == stats.bytes_by_category[cat]
    print("\nexactness: predicted == executed ledger at P=16 (2d), "
          f"{point.comm_bytes} comm bytes")

    benchmark(sweep, graph, machines=("summit",), ps=(1024, 16384))
    attach(
        benchmark,
        sweep_points=len(result.points),
        sweep_seconds=result.elapsed_seconds,
        winners={
            f"{w['machine']}/P{w['p']}": w["algorithm"]
            for w in doc["winners"]
        },
    )
