#!/usr/bin/env python
"""Perf guard: compare a fresh bench JSON against the committed baseline.

Fails (exit 1) when any benchmark's ``mean_s`` regressed by more than
``--threshold`` (default 2x -- generous on purpose: CI machines are
noisy and differ from the machine that produced the baseline, so this
catches order-of-magnitude fast-path regressions, not percent-level
drift).  Benchmarks present on only one side are reported and skipped.

Usage::

    python benchmarks/check_regression.py FRESH.json BASELINE.json
    python benchmarks/check_regression.py FRESH.json BASELINE.json --threshold 3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def load_means(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    return {
        b["name"]: b["mean_s"]
        for b in payload.get("benchmarks", [])
        if b.get("status") == "ok" and b.get("mean_s")
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument("baseline", help="committed baseline bench JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when fresh mean_s exceeds baseline "
                             "mean_s by this factor (default 2.0)")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        print("--threshold must be positive", file=sys.stderr)
        return 2

    fresh = load_means(args.fresh)
    baseline = load_means(args.baseline)
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        print("no benchmarks in common between fresh and baseline",
              file=sys.stderr)
        return 2

    regressions = []
    print(f"{'benchmark':45s} {'baseline':>12s} {'fresh':>12s} {'ratio':>7s}")
    for name in shared:
        ratio = fresh[name] / baseline[name]
        flag = "  <-- REGRESSION" if ratio > args.threshold else ""
        print(f"{name:45s} {baseline[name] * 1e3:10.2f}ms "
              f"{fresh[name] * 1e3:10.2f}ms {ratio:6.2f}x{flag}")
        if ratio > args.threshold:
            regressions.append((name, ratio))
    for name in sorted(set(fresh) ^ set(baseline)):
        side = "fresh" if name in fresh else "baseline"
        print(f"{name:45s} (only in {side}; skipped)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.1f}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.threshold:.1f}x across "
          f"{len(shared)} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
