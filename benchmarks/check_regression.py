#!/usr/bin/env python
"""Perf guard: compare a fresh bench JSON against the committed baseline.

Fails (exit 1) when any benchmark's ``mean_s`` regressed by more than
``--threshold`` (default 2x -- generous on purpose: CI machines are
noisy and differ from the machine that produced the baseline, so this
catches order-of-magnitude fast-path regressions, not percent-level
drift).  Benchmarks present on only one side are reported and skipped.

Escape hatches:

* ``--update-baseline`` copies the fresh report over the baseline after
  printing the comparison (exit 0), so refreshing the committed
  ``BENCH_dist.json`` never needs hand-editing;
* setting ``REPRO_BENCH_SKIP`` (to anything non-empty) skips the guard
  entirely with exit 0 -- for machines where timing is meaningless
  (emulators, heavily shared CI runners).

Usage::

    python benchmarks/check_regression.py FRESH.json BASELINE.json
    python benchmarks/check_regression.py FRESH.json BASELINE.json --threshold 3
    python benchmarks/check_regression.py FRESH.json BASELINE.json --update-baseline
    REPRO_BENCH_SKIP=1 python benchmarks/check_regression.py FRESH.json BASELINE.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import List, Optional


def load_means(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    return {
        b["name"]: b["mean_s"]
        for b in payload.get("benchmarks", [])
        if b.get("status") == "ok" and b.get("mean_s")
    }


def check_partition_epoch(path: str) -> List[str]:
    """Correctness guard on the ``partition_epoch`` section.

    The partition-aware 1D benchmark's whole point is that the
    multilevel partition charges strictly fewer ghost-exchange (hence
    dcomm) bytes than the contiguous block baseline; a fresh report
    where that inverts means the ghost ledger or the partitioner
    regressed, regardless of timings.  Returns a list of violation
    messages (empty = healthy or section absent).
    """
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    section = payload.get("partition_epoch")
    if not isinstance(section, dict):
        return []
    problems = []
    for entry in section.get("entries", []):
        graph = entry.get("graph", "?")
        block = entry.get("block", {})
        multi = entry.get("multilevel", {})
        for key in ("dcomm_bytes", "expansion_bytes"):
            b, m = block.get(key), multi.get(key)
            if b is None or m is None:
                problems.append(
                    f"partition_epoch[{graph}]: missing {key}"
                )
            elif not m < b:
                problems.append(
                    f"partition_epoch[{graph}]: multilevel {key} {m} "
                    f"not below block {b}"
                )
    return problems


def check_parallel_epoch(path: str) -> List[str]:
    """Structural + perf guard on the ``parallel_epoch`` section.

    Two gates, per ISSUE 6:

    * **dispatch gate** (core-count independent, never skipped): the
      resident hot path must stay O(1) driver dispatches per ``fit`` --
      one fit dispatch for the whole timed run and well under one
      dispatch per epoch.  A report showing per-epoch dispatches means
      the driver round-trip crept back onto the hot path.
    * **speedup gate** (timing, only meaningful with real cores): the
      best process-backend configuration must clear 2x over the virtual
      runtime -- enforced only when the report says ``host_cores >= 4``;
      otherwise an explicit skip notice is printed, because on a starved
      host every worker shares one core and the ratio measures the
      scheduler, not the backend.

    Returns a list of violation messages (empty = healthy or section
    absent).
    """
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    section = payload.get("parallel_epoch")
    if not isinstance(section, dict):
        return []
    problems = []
    dispatch = section.get("dispatch")
    if not isinstance(dispatch, dict):
        problems.append("parallel_epoch: missing 'dispatch' subsection "
                        "(fit dispatch counters not recorded)")
    else:
        epochs = dispatch.get("epochs", 0)
        fit_dispatches = dispatch.get("fit_dispatches")
        per_epoch = dispatch.get("dispatches_per_epoch")
        if fit_dispatches is None or per_epoch is None:
            problems.append("parallel_epoch.dispatch: missing "
                            "fit_dispatches/dispatches_per_epoch")
        elif epochs >= 2:
            if fit_dispatches > 1:
                problems.append(
                    f"parallel_epoch: {fit_dispatches} fit dispatches "
                    f"for one {epochs}-epoch fit (resident hot path "
                    "must be ONE dispatch per fit)"
                )
            if per_epoch >= 1.0:
                problems.append(
                    f"parallel_epoch: {per_epoch:.2f} dispatches per "
                    "epoch (>= 1 means the epoch loop round-trips "
                    "through the driver again)"
                )
    host_cores = section.get("host_cores", 0)
    best = section.get("best_speedup")
    if host_cores >= 4 and not os.environ.get("REPRO_BENCH_SKIP"):
        if best is None or best < 2.0:
            problems.append(
                f"parallel_epoch: best_speedup {best} below 2.0 on a "
                f"{host_cores}-core host"
            )
    else:
        why = (f"host_cores={host_cores} < 4"
               if host_cores < 4 else "REPRO_BENCH_SKIP set")
        print(f"parallel_epoch: speedup gate skipped ({why}); "
              f"best_speedup={best} recorded for reference, dispatch "
              "gate still enforced")
    return problems


def check_obs(path: str) -> List[str]:
    """Overhead guard on the ``obs`` section (ISSUE 7).

    Span tracing is an observer: a traced resident ``fit`` must cost at
    most 10 % more wall time than an untraced one.  Wall ratios are only
    meaningful when the workers have real cores to run on, so the gate
    is enforced only when the report says ``host_cores >= 4``; on a
    starved host an explicit skip notice is printed and the recorded
    ratio stands as documentation.  Returns a list of violation messages
    (empty = healthy or section absent).
    """
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    section = payload.get("obs")
    if not isinstance(section, dict):
        return []
    problems = []
    ratio = section.get("overhead_ratio")
    host_cores = section.get("host_cores", 0)
    if ratio is None:
        problems.append("obs: missing overhead_ratio (tracing cost not "
                        "recorded)")
    elif host_cores >= 4 and not os.environ.get("REPRO_BENCH_SKIP"):
        if ratio > 1.10:
            problems.append(
                f"obs: tracing overhead ratio {ratio:.3f} above 1.10 on "
                f"a {host_cores}-core host (span recording must stay "
                "under 10% of untraced wall)"
            )
    else:
        why = (f"host_cores={host_cores} < 4"
               if host_cores < 4 else "REPRO_BENCH_SKIP set")
        print(f"obs: overhead gate skipped ({why}); "
              f"overhead_ratio={ratio} recorded for reference")
    return problems


def check_obs_profile(path: str) -> List[str]:
    """Overhead guard on the ``obs_profile`` section (ISSUE 9).

    Kernel profiling (flop/byte counters on SpMM, the GEMM funnels and
    reduction folds) rides on top of span tracing, and the *combined*
    cost must still look like an observer: a traced+profiled resident
    ``fit`` must cost at most 10 % more wall time than an untraced one.
    Same skip discipline as the ``obs`` gate -- wall ratios only mean
    something with real cores under the workers, so the gate is enforced
    only when the report says ``host_cores >= 4``.  Returns a list of
    violation messages (empty = healthy or section absent).
    """
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    section = payload.get("obs_profile")
    if not isinstance(section, dict):
        return []
    problems = []
    ratio = section.get("overhead_ratio")
    host_cores = section.get("host_cores", 0)
    if ratio is None:
        problems.append("obs_profile: missing overhead_ratio (kernel "
                        "profiling cost not recorded)")
    elif host_cores >= 4 and not os.environ.get("REPRO_BENCH_SKIP"):
        if ratio > 1.10:
            problems.append(
                f"obs_profile: trace+profile overhead ratio {ratio:.3f} "
                f"above 1.10 on a {host_cores}-core host (kernel "
                "counters must stay under 10% of untraced wall)"
            )
    else:
        why = (f"host_cores={host_cores} < 4"
               if host_cores < 4 else "REPRO_BENCH_SKIP set")
        print(f"obs_profile: overhead gate skipped ({why}); "
              f"overhead_ratio={ratio} recorded for reference")
    if not section.get("kernels"):
        problems.append("obs_profile: no kernels recorded (profiled fit "
                        "produced an empty counter table)")
    return problems


def check_trace_diff(fresh_trace: str, baseline_trace: str,
                     threshold: float) -> List[str]:
    """Per-phase trace regression via ``repro.obs.diff``.

    Optional extra gate (``--trace-a``/``--trace-b``): runs the same
    machinery as ``repro obs diff`` between a fresh trace summary JSON
    and a committed baseline and fails on a ``regression`` verdict.
    Timing-based, so ``REPRO_BENCH_SKIP`` silences it.
    """
    if os.environ.get("REPRO_BENCH_SKIP"):
        print("trace diff gate skipped (REPRO_BENCH_SKIP set)")
        return []
    try:
        from repro.obs.diff import diff_traces, format_trace_diff
    except ModuleNotFoundError:
        # Fresh clone without `pip install -e .`: src layout fallback.
        sys.path.insert(0, os.path.join(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))), "src"))
        from repro.obs.diff import diff_traces, format_trace_diff
    with open(baseline_trace, encoding="utf-8") as fh:
        a = json.load(fh)
    with open(fresh_trace, encoding="utf-8") as fh:
        b = json.load(fh)
    try:
        verdict = diff_traces(a, b, threshold=threshold,
                              a_name=baseline_trace, b_name=fresh_trace)
    except ValueError as exc:
        return [f"trace diff: {exc}"]
    print(format_trace_diff(verdict))
    if verdict.get("verdict") == "regression":
        return [
            f"trace diff: {fresh_trace} regressed vs {baseline_trace} "
            f"beyond {threshold:.2f}x "
            f"(max drift {verdict.get('max_drift', 0.0) * 100:.1f}%)"
        ]
    return []


def check_checkpoint(path: str) -> List[str]:
    """Overhead guard on the ``checkpoint`` section (ISSUE 8).

    Epoch-boundary checkpointing is insurance, not a tax: a resident
    ``fit`` with ``checkpoint_every=1`` (the worst case) must cost at
    most 5 % more wall time than one without.  Like the obs gate, wall
    ratios are only meaningful with real cores under the workers, so
    the gate is enforced only when the report says ``host_cores >= 4``;
    otherwise an explicit skip notice is printed and the recorded ratio
    stands as documentation.  Returns a list of violation messages
    (empty = healthy or section absent).
    """
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    section = payload.get("checkpoint")
    if not isinstance(section, dict):
        return []
    problems = []
    ratio = section.get("overhead_ratio")
    host_cores = section.get("host_cores", 0)
    if ratio is None:
        problems.append("checkpoint: missing overhead_ratio (write cost "
                        "not recorded)")
    elif host_cores >= 4 and not os.environ.get("REPRO_BENCH_SKIP"):
        if ratio > 1.05:
            problems.append(
                f"checkpoint: overhead ratio {ratio:.3f} above 1.05 on "
                f"a {host_cores}-core host (atomic epoch-boundary "
                "writes must stay under 5% of plain fit wall)"
            )
    else:
        why = (f"host_cores={host_cores} < 4"
               if host_cores < 4 else "REPRO_BENCH_SKIP set")
        print(f"checkpoint: overhead gate skipped ({why}); "
              f"overhead_ratio={ratio} recorded for reference")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument("baseline", help="committed baseline bench JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when fresh mean_s exceeds baseline "
                             "mean_s by this factor (default 2.0)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="after printing the comparison, overwrite "
                             "the baseline with the fresh report and "
                             "exit 0 (refreshes the committed guard)")
    parser.add_argument("--trace-a", metavar="BASELINE_TRACE",
                        help="baseline Chrome-trace JSON for the "
                             "per-phase trace-diff gate (with --trace-b)")
    parser.add_argument("--trace-b", metavar="FRESH_TRACE",
                        help="fresh Chrome-trace JSON for the per-phase "
                             "trace-diff gate (with --trace-a)")
    parser.add_argument("--trace-threshold", type=float, default=1.25,
                        help="per-phase ratio above which the trace diff "
                             "counts as a regression (default 1.25)")
    args = parser.parse_args(argv)
    if bool(args.trace_a) != bool(args.trace_b):
        print("--trace-a and --trace-b must be given together",
              file=sys.stderr)
        return 2
    if args.threshold <= 0:
        print("--threshold must be positive", file=sys.stderr)
        return 2
    # Structural correctness first: the partition_epoch invariant is
    # timing-free, so not even REPRO_BENCH_SKIP (a *timing-noise*
    # opt-out) silences it.
    partition_problems = check_partition_epoch(args.fresh)
    if partition_problems:
        for msg in partition_problems:
            print(msg, file=sys.stderr)
        print("partition_epoch invariant violated (multilevel must beat "
              "block); failing regardless of timings", file=sys.stderr)
        return 1
    # Likewise the parallel_epoch dispatch gate: dispatch counts are a
    # structural property of the resident backend, not a timing, so
    # REPRO_BENCH_SKIP does not silence it (the *speedup* gate inside
    # already self-skips on starved hosts).
    parallel_problems = check_parallel_epoch(args.fresh)
    if parallel_problems:
        for msg in parallel_problems:
            print(msg, file=sys.stderr)
        print("parallel_epoch gate violated; failing regardless of "
              "timings", file=sys.stderr)
        return 1
    # The obs overhead gate self-skips on starved hosts (wall ratios
    # need real cores) but a violation on a capable host is a hard fail:
    # tracing that costs > 10% is no longer an observer.
    obs_problems = check_obs(args.fresh)
    if obs_problems:
        for msg in obs_problems:
            print(msg, file=sys.stderr)
        print("obs overhead gate violated; failing regardless of other "
              "timings", file=sys.stderr)
        return 1
    # Kernel profiling shares the observer contract: the combined
    # trace+profile ratio gets the same 10% ceiling (plus a structural
    # check that the counter table is non-empty, which no skip silences).
    obs_profile_problems = check_obs_profile(args.fresh)
    if obs_profile_problems:
        for msg in obs_profile_problems:
            print(msg, file=sys.stderr)
        print("obs_profile gate violated; failing regardless of other "
              "timings", file=sys.stderr)
        return 1
    # Optional per-phase trace diff between a fresh trace export and a
    # committed baseline (same machinery as `repro obs diff`).
    if args.trace_a and args.trace_b:
        trace_problems = check_trace_diff(
            args.trace_b, args.trace_a, args.trace_threshold)
        if trace_problems:
            for msg in trace_problems:
                print(msg, file=sys.stderr)
            print("trace diff gate violated; failing regardless of other "
                  "timings", file=sys.stderr)
            return 1
    # Same shape for checkpoint writes: self-skips on starved hosts,
    # hard-fails on capable ones -- fault-tolerance insurance that costs
    # > 5% of fit wall is a tax.
    checkpoint_problems = check_checkpoint(args.fresh)
    if checkpoint_problems:
        for msg in checkpoint_problems:
            print(msg, file=sys.stderr)
        print("checkpoint overhead gate violated; failing regardless of "
              "other timings", file=sys.stderr)
        return 1

    if os.environ.get("REPRO_BENCH_SKIP"):
        # The env var opts out of the *guard*; an explicit
        # --update-baseline is still an instruction to copy.
        if args.update_baseline:
            shutil.copyfile(args.fresh, args.baseline)
            print("REPRO_BENCH_SKIP set: guard skipped; baseline "
                  f"{args.baseline} updated from {args.fresh}")
        else:
            print("REPRO_BENCH_SKIP set: skipping the perf guard")
        return 0

    fresh = load_means(args.fresh)
    baseline = load_means(args.baseline)
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        if args.update_baseline:
            shutil.copyfile(args.fresh, args.baseline)
            print(f"baseline {args.baseline} replaced by {args.fresh} "
                  "(no benchmarks in common)")
            return 0
        print("no benchmarks in common between fresh and baseline",
              file=sys.stderr)
        return 2

    regressions = []
    print(f"{'benchmark':45s} {'baseline':>12s} {'fresh':>12s} {'ratio':>7s}")
    for name in shared:
        ratio = fresh[name] / baseline[name]
        flag = "  <-- REGRESSION" if ratio > args.threshold else ""
        print(f"{name:45s} {baseline[name] * 1e3:10.2f}ms "
              f"{fresh[name] * 1e3:10.2f}ms {ratio:6.2f}x{flag}")
        if ratio > args.threshold:
            regressions.append((name, ratio))
    for name in sorted(set(fresh) ^ set(baseline)):
        side = "fresh" if name in fresh else "baseline"
        print(f"{name:45s} (only in {side}; skipped)")

    if args.update_baseline:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"\nbaseline {args.baseline} updated from {args.fresh} "
              f"({len(regressions)} would-be regression(s) absorbed)")
        return 0
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.1f}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.threshold:.1f}x across "
          f"{len(shared)} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
