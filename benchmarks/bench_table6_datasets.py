"""Table VI: dataset characteristics (published + generated stand-ins).

Regenerates the paper's dataset table and verifies the stand-ins preserve
the quantities the communication analysis depends on (average degree,
feature width, label count).  The timed kernel is stand-in generation.
"""

from repro.graph import PUBLISHED, make_standin

from benchmarks.helpers import attach, print_table


def bench_table6_published_and_standins(benchmark):
    rows = []
    for name, spec in PUBLISHED.items():
        rows.append(
            (
                name, spec.vertices, spec.edges, spec.features, spec.labels,
                round(spec.avg_degree, 1),
            )
        )
    print_table(
        "Table VI -- published dataset characteristics",
        ("Name", "Vertices", "Edges", "Features", "Labels", "AvgDeg"),
        rows,
    )

    standin_rows = []
    for name in PUBLISHED:
        ds = make_standin(name, scale_divisor=256, seed=0)
        s = ds.summary()
        standin_rows.append(
            (
                ds.name, int(s["vertices"]), int(s["edges"]),
                int(s["features"]), int(s["labels"]),
                round(s["avg_degree"], 1),
            )
        )
    print_table(
        "Table VI stand-ins (R-MAT, 1/256 vertices, degree preserved)",
        ("Name", "Vertices", "Edges", "Features", "Labels", "AvgDeg"),
        standin_rows,
    )
    attach(
        benchmark,
        published={k: v.vertices for k, v in PUBLISHED.items()},
        standin_vertices={r[0]: r[1] for r in standin_rows},
    )

    # Timed kernel: generating the amazon stand-in (R-MAT + normalise).
    benchmark(make_standin, "amazon", scale_divisor=1024, seed=1)
