"""Figure 2: epoch throughput of the 2D implementation across GPU counts.

Two complementary reproductions:

* **Full scale (modeled)** -- the analytic 2D epoch model at the published
  Table VI sizes, printing epochs/second for exactly the GPU counts of the
  paper's three panels.  Shape checks: throughput rises with GPU count on
  every dataset, and Amazon's 16 -> 64 speedup lands near the paper's 1.8x.
* **Executed (timed)** -- a real virtual-cluster epoch on a Reddit
  stand-in, which is what the ``benchmark`` fixture times.
"""

from repro.analysis.figures import FIG2_GPU_COUNTS, figure2_throughput
from repro.dist import make_algorithm
from repro.graph import make_standin

from benchmarks.helpers import attach, print_table


def bench_fig2_epoch_throughput(benchmark):
    points = figure2_throughput()
    rows = [
        (
            pt.dataset, pt.gpus,
            round(pt.epochs_per_second, 3),
            round(pt.epoch_seconds, 3),
            pt.dominant_category,
        )
        for pt in points
    ]
    print_table(
        "Fig. 2 -- epoch throughput of the 2D algorithm (modeled, "
        "published sizes, Summit profile)",
        ("Dataset", "GPUs", "Epochs/s", "Sec/epoch", "Dominant"),
        rows,
    )

    # Paper shape assertions (mirrors test_model2d, enforced here too so a
    # bench run catches regressions in the reproduction).
    by_ds = {}
    for pt in points:
        by_ds.setdefault(pt.dataset, []).append(pt.epochs_per_second)
    for name, series in by_ds.items():
        assert series == sorted(series), f"{name} throughput must rise"
    amazon = {pt.gpus: pt for pt in points if pt.dataset == "amazon"}
    speedup_16_64 = amazon[64].epochs_per_second / amazon[16].epochs_per_second
    print(f"\namazon 16->64 epoch-throughput speedup: {speedup_16_64:.2f}x "
          f"(paper: 1.8x)")
    attach(
        benchmark,
        amazon_speedup_16_to_64=round(speedup_16_64, 3),
        throughputs={pt.dataset + str(pt.gpus): round(pt.epochs_per_second, 3)
                     for pt in points},
    )

    # Timed kernel: one executed 2D epoch on a scaled Reddit stand-in.
    ds = make_standin("reddit", scale_divisor=512, seed=0)
    algo = make_algorithm("2d", 16, ds, seed=0)
    algo.setup(ds.features, ds.labels)
    benchmark(algo.train_epoch)
