"""Section IV-A.8: graph partitioning vs random distribution (the Metis
experiment).

The paper ran Metis on Reddit with 64 parts and found:

* total edge cut:          3,258,385 vs 11,761,151 random  (72 % lower)
* max per-process cut:       131,286 vs    185,823 random  (29 % lower)

concluding that the *bulk-synchronous* benefit (set by the max-loaded
process) is far smaller than the total-cut headline -- one reason the
paper prefers 2D/3D algorithms over partitioning-based 1D.

Substitution note (DESIGN.md): real Reddit mixes strong community
structure (what Metis exploits for the 72 %) with scale-free hubs (what
caps the max-process gain at 29 %).  A plain R-MAT stand-in has the hubs
but no communities, so the stand-in here is an SBM community core (64
communities) plus an R-MAT hub overlay.  On it, our from-scratch
multilevel partitioner reproduces the total reduction almost exactly
(~72-74 %), while the max-process metric improves far less -- in fact it
degrades, which *strengthens* the paper's conclusion that total edge cut
overstates the bulk-synchronous benefit.
"""

import numpy as np

from repro.graph.generators import rmat, stochastic_block_model
from repro.partition import (
    MultilevelPartitioner,
    edge_cut_stats,
    random_partition,
)
from repro.sparse.csr import CSRMatrix

from benchmarks.helpers import attach, print_table

P = 64


def community_hub_standin(n: int = 4096, communities: int = 64,
                          seed: int = 0) -> CSRMatrix:
    """Reddit-like stand-in: SBM community core + R-MAT hub overlay."""
    size = n // communities
    sbm = stochastic_block_model(
        (size,) * communities, p_in=0.4, p_out=0.0005, seed=seed
    )
    scale = int(np.ceil(np.log2(n)))
    overlay = rmat(scale=scale, edge_factor=2, seed=seed + 1, n=n)
    r1, c1, _ = sbm.to_coo()
    r2, c2, _ = overlay.to_coo()
    a = CSRMatrix.from_coo(
        np.concatenate([r1, r2]), np.concatenate([c1, c2]),
        np.ones(r1.size + r2.size), (n, n),
    )
    a.data[:] = 1.0
    return a


def bench_edgecut_multilevel_vs_random(benchmark):
    a = community_hub_standin()
    n = a.nrows

    rnd = edge_cut_stats(a, random_partition(n, P, seed=1), P)
    partitioner = MultilevelPartitioner(
        nparts=P, seed=0, refine_passes=8, coarsen_until=2 * P
    )
    result = benchmark(partitioner.partition, a)
    ml = edge_cut_stats(a, result.assignment, P)

    total_red = 1 - ml.total_cut_edges / rnd.total_cut_edges
    max_red = 1 - ml.max_part_cut_edges / rnd.max_part_cut_edges
    rows = [
        ("random", rnd.total_cut_edges, rnd.max_part_cut_edges,
         rnd.max_ghost_rows),
        ("multilevel", ml.total_cut_edges, ml.max_part_cut_edges,
         ml.max_ghost_rows),
        ("reduction", f"{total_red:.1%}", f"{max_red:.1%}", "-"),
        ("paper (Metis/Reddit)", "72.3%", "29.3%", "-"),
    ]
    print_table(
        f"Sec IV-A.8 -- partitioning vs random, community+hub stand-in "
        f"(n={n}, nnz={a.nnz}), P={P}",
        ("partition", "total cut", "max part cut", "edgecut_P (ghost rows)"),
        rows,
    )
    print(
        "\nreproduced claim: the total-cut reduction (headline) vastly "
        "overstates the\nbulk-synchronous benefit, which is bounded by the "
        "max-loaded process."
    )
    assert total_red > 0.5, "multilevel must find the community structure"
    assert max_red < total_red - 0.2, (
        "max-process reduction must lag far behind the total reduction"
    )
    attach(
        benchmark,
        total_cut_reduction=round(total_red, 4),
        max_part_reduction=round(max_red, 4),
        paper_total_reduction=0.72,
        paper_max_reduction=0.29,
    )
