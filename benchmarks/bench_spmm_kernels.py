"""Serial SpMM kernel before/after: the hottest local path, measured.

The distributed algorithms spend their local compute in CSR-times-dense
kernels over many small reused blocks.  This bench times the three
backends on GNN-shaped operands:

* ``cumsum``   -- the original segment-sum formulation (kept as the
  baseline): materialises the full running sum of the expanded products
  plus two fancy-index gathers;
* ``reduceat`` -- the current pure-numpy kernel: one in-place segment
  fold, no cumsum materialisation;
* ``scipy``    -- the compiled kernel through the per-matrix cached
  zero-copy wrapper (re-wrapping per call was measurable overhead at
  distributed block sizes).

The measured before/after ratios land in ``BENCH_dist.json`` via the
``extra_info`` attachment.
"""

import numpy as np

from repro.graph import make_synthetic
from repro.sparse.spmm import spmm_numpy, spmm_numpy_cumsum, spmm_scipy

from benchmarks.helpers import attach, print_table

import time


def _time(fn, a, b, repeats):
    fn(a, b)  # warm (builds the scipy wrapper cache on first touch)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn(a, b)
    return (time.perf_counter() - t0) / repeats


def bench_spmm_kernel_comparison(benchmark):
    ds = make_synthetic(n=3000, avg_degree=12, f=64, n_classes=8, seed=0)
    a = ds.adjacency
    rng = np.random.default_rng(0)
    cases = {
        "full 3000x3000 f=64": (a, rng.random((a.ncols, 64)), 5),
        "block 750x3000 f=16": (
            a.block(0, 750, 0, 3000), rng.random((3000, 16)), 20
        ),
        "tiny 100x1000 f=16": (
            a.block(0, 100, 0, 1000), rng.random((1000, 16)), 200
        ),
    }
    rows = []
    info = {}
    for label, (blk, dense, repeats) in cases.items():
        ref = spmm_numpy_cumsum(blk, dense)
        assert np.allclose(spmm_numpy(blk, dense), ref)
        assert np.allclose(spmm_scipy(blk, dense), ref)
        before = _time(spmm_numpy_cumsum, blk, dense, repeats)
        after = _time(spmm_numpy, blk, dense, repeats)
        compiled = _time(spmm_scipy, blk, dense, repeats)
        rows.append(
            (label, round(before * 1e6, 1), round(after * 1e6, 1),
             round(compiled * 1e6, 1), round(before / after, 2))
        )
        info[label] = {
            "cumsum_us": before * 1e6,
            "reduceat_us": after * 1e6,
            "scipy_cached_us": compiled * 1e6,
            "numpy_speedup": before / after,
        }
    print_table(
        "serial CSR SpMM kernels (before = cumsum, after = reduceat)",
        ("operand", "cumsum us", "reduceat us", "scipy us", "speedup"),
        rows,
    )
    ds_small = make_synthetic(n=400, avg_degree=8, f=32, n_classes=4, seed=1)
    dense = rng.random((400, 32))
    benchmark(spmm_numpy, ds_small.adjacency, dense)
    attach(benchmark, kernels=info)
