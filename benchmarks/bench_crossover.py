"""Section VI-d: 2D becomes competitive with 1D only when sqrt(p) >= 5.

The paper uses this to explain why comparisons against NeuGraph (<= 8
GPUs) and ROC (<= 16 GPUs) would not show 2D's benefit.  We sweep the
word-count crossover for each published dataset and for the paper's
simplified regime (edgecut ~ n, nnz ~ nf).
"""

from repro.analysis.formulas import crossover_p_2d_vs_1d, words_1d, words_2d
from repro.graph import PUBLISHED

from benchmarks.helpers import attach, print_table


def bench_crossover_sweep(benchmark):
    rows = []
    crossings = {}
    for name, spec in PUBLISHED.items():
        n, nnz, f = spec.vertices, spec.edges, float(spec.features)
        cross = crossover_p_2d_vs_1d(n, nnz, f, 3)
        crossings[name] = cross
        ratio_16 = (
            words_1d(n, nnz, f, 3, 16).words / words_2d(n, nnz, f, 3, 16).words
        )
        ratio_100 = (
            words_1d(n, nnz, f, 3, 100).words
            / words_2d(n, nnz, f, 3, 100).words
        )
        rows.append((name, cross, round(ratio_16, 2), round(ratio_100, 2)))
    # The paper's simplified regime: d ~ f.
    n, f = 1_000_000, 128.0
    simplified = crossover_p_2d_vs_1d(n, int(n * f), f, 3)
    rows.append(("simplified (d=f)", simplified, "-", "-"))
    print_table(
        "2D-vs-1D words crossover (first square P where 2D wins)",
        ("dataset", "crossover P", "1D/2D @ P=16", "1D/2D @ P=100"),
        rows,
    )
    print(
        "\npaper: '2D will only be competitive with 1D when sqrt(p) >= 5'\n"
        "(P ~ 25); NeuGraph ran <= 8 GPUs and ROC <= 16, both below the "
        "crossover."
    )
    assert 16 < simplified <= 49
    # At the ROC/NeuGraph scales the 1D/2D ratio is near or below 1:
    for name, cross, r16, _ in rows[:-1]:
        assert r16 < 1.4, f"{name}: 2D should not dominate at P=16"
    benchmark(crossover_p_2d_vs_1d, n, int(n * f), f, 3)
    attach(benchmark, crossovers=crossings, simplified=simplified)
