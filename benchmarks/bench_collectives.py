"""Collective-communication sanity: measured charges track the alpha-beta
formulas, and the latency-bound regime the paper hits on Summit.

Section VI: "Each of these sparse broadcasts take less than 1ms at p = 36
processes.  On the Summit supercomputer, inter-node communication is
latency-bound at that point."  We locate the message size where latency
overtakes bandwidth under the Summit profile, and time the simulated
broadcast machinery.
"""

import numpy as np

from repro.comm import VirtualRuntime, broadcast_cost
from repro.comm.tracker import Category
from repro.config import SUMMIT

from benchmarks.helpers import attach, print_table


def bench_broadcast_cost_curve(benchmark):
    p = 36
    rows = []
    crossover = None
    for size_kb in (1, 8, 64, 512, 4096, 32768):
        nbytes = size_kb * 1024
        cost = broadcast_cost(SUMMIT, nbytes, p, span=p)
        lat = cost.messages * SUMMIT.alpha
        bw = cost.seconds - lat
        if crossover is None and bw > lat:
            crossover = size_kb
        rows.append(
            (
                size_kb, round(cost.seconds * 1e6, 2),
                round(lat * 1e6, 2), round(bw * 1e6, 2),
                "bandwidth" if bw > lat else "latency",
            )
        )
    print_table(
        f"Tree broadcast cost at P={p} (Summit profile)",
        ("msg KiB", "total us", "latency us", "bandwidth us", "bound by"),
        rows,
    )
    print("\npaper: sub-millisecond broadcasts at p=36 are latency-bound on "
          "Summit -- small messages above show exactly that regime.")
    assert rows[0][4] == "latency"
    assert rows[-1][4] == "bandwidth"

    # Measured charge equals the formula (executed collective).
    rt = VirtualRuntime.make_1d(p)
    payload = np.ones((256, 64))
    rt.coll.broadcast(tuple(range(p)), root=0, value=payload)
    charged = rt.tracker.wall_seconds(Category.DCOMM)
    formula = broadcast_cost(SUMMIT, payload.nbytes, p, span=p).seconds
    assert abs(charged - formula) < 1e-12

    def run_broadcast():
        rt2 = VirtualRuntime.make_1d(16)
        return rt2.coll.broadcast(
            tuple(range(16)), root=0, value=payload
        )

    benchmark(run_broadcast)
    attach(benchmark, latency_to_bandwidth_crossover_kib=crossover)


def bench_reduce_scatter_matches_formula(benchmark):
    """The 1D backward's reduce-scatter: charge == closed form."""
    from repro.comm import reduce_scatter_cost

    p = 16
    rt = VirtualRuntime.make_1d(p)
    values = {r: np.full((320, 32), float(r)) for r in range(p)}
    rt.coll.reduce_scatter(tuple(range(p)), values)
    charged = rt.tracker.wall_seconds(Category.DCOMM)
    formula = reduce_scatter_cost(
        SUMMIT, values[0].nbytes, p, span=p
    ).seconds
    assert abs(charged - formula) < 1e-12
    print(f"\nreduce-scatter {values[0].nbytes} B over {p} ranks: "
          f"{formula*1e6:.1f} us (charge == formula)")

    def run_rs():
        rt2 = VirtualRuntime.make_1d(p)
        return rt2.coll.reduce_scatter(tuple(range(p)), values)

    benchmark(run_rs)
    attach(benchmark, formula_us=round(formula * 1e6, 2))
