"""Section V-C: the memory-feasibility table (the paper's OOM report).

"We do not report numbers for Amazon on 4 devices or numbers for Protein
on 4 or 16 devices as the data does not fit in memory for those
configurations.  Jia et al. observed the same behavior with PyG."

The per-rank memory model (sparse storage, the O(nfL) activation stack,
backward temporaries, receive buffers, calibrated framework overhead) is
evaluated at every (dataset, GPU count) of Figures 2/3 plus the omitted
configurations, against a 16 GB V100.  Also prints the memory side of the
algorithm choice: 1D's non-scaling gathered-H floor, 1.5D's c-fold
replication, 2D's optimal 1/P scaling.
"""

from repro.analysis.memory import (
    V100_BYTES,
    feasibility_table,
    memory_15d,
    memory_1d,
    memory_2d,
    memory_3d,
)
from repro.graph.datasets import layer_widths, published_spec

from benchmarks.helpers import attach, print_table


def bench_memory_feasibility(benchmark):
    table = benchmark(feasibility_table)
    rows = []
    for name, fits in table.items():
        spec = published_spec(name)
        widths = layer_widths(spec.features, spec.labels)
        nnz = spec.edges + spec.vertices
        for p, ok in fits.items():
            est = memory_2d(spec.vertices, nnz, widths, p)
            rows.append(
                (name, p, f"{est.total_gib:.1f}",
                 "fits" if ok else "OOM")
            )
    print_table(
        "Section V-C feasibility on 16 GB V100s (2D algorithm, modeled)",
        ("dataset", "GPUs", "GiB/rank", "verdict"),
        rows,
    )
    print(
        "\npaper: amazon omitted at 4 GPUs; protein omitted at 4 and 16 "
        "GPUs; everything\nelse reported.  The model reproduces that "
        "pattern exactly."
    )
    assert table["amazon"][4] is False
    assert table["protein"][16] is False
    assert table["amazon"][16] and table["protein"][36]
    assert all(table["reddit"].values())

    # The memory side of the algorithm choice, protein at P = 64.
    spec = published_spec("protein")
    widths = layer_widths(spec.features, spec.labels)
    nnz = spec.edges + spec.vertices
    n = spec.vertices
    algo_rows = [
        ("1d", f"{memory_1d(n, nnz, widths, 64).total_gib:.1f}"),
        ("1.5d (c=4)", f"{memory_15d(n, nnz, widths, 64, 4).total_gib:.1f}"),
        ("2d", f"{memory_2d(n, nnz, widths, 64).total_gib:.1f}"),
        ("3d", f"{memory_3d(n, nnz, widths, 64).total_gib:.1f}"),
    ]
    print_table(
        "Per-rank memory by algorithm, protein @ P=64 (GiB)",
        ("algorithm", "GiB/rank"),
        algo_rows,
    )
    m1 = memory_1d(n, nnz, widths, 64).total_bytes
    m2 = memory_2d(n, nnz, widths, 64).total_bytes
    assert m2 < m1, "2D must be the memory-optimal choice"
    attach(
        benchmark,
        feasibility={k: {str(p): v for p, v in d.items()}
                     for k, d in table.items()},
    )
