#!/usr/bin/env python
"""Run the benchmark suite headlessly and write ``BENCH_dist.json``.

``pytest benchmarks`` runs the same modules under pytest-benchmark; this
harness is the dependency-free path the perf trajectory tracks: it
discovers every ``bench_*`` function in ``benchmarks/bench_*.py``, runs
it with a deterministic environment (the modules pin their own seeds),
times the workload each function hands to its ``benchmark`` fixture, and
writes one machine-readable JSON file with per-benchmark timings plus
every ``extra_info`` attachment (analytic series, byte counts, kernel
before/after ratios, sweep winners).

Usage::

    python benchmarks/run_benchmarks.py                 # full run
    python benchmarks/run_benchmarks.py --smoke         # 1 round each
    python benchmarks/run_benchmarks.py --select spmm   # substring filter
    python benchmarks/run_benchmarks.py --output BENCH_dist.json
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import json
import platform
import sys
import time
import traceback
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: Output schema identifier (bump on incompatible changes).
SCHEMA = "repro-bench/1"


class HarnessBenchmark:
    """Drop-in stand-in for the pytest-benchmark fixture.

    Supports the two APIs the suite uses: calling ``benchmark(fn, *args)``
    (times ``fn`` over ``rounds`` rounds, returns its last result) and
    the ``extra_info`` mapping.
    """

    def __init__(self, rounds: int):
        self.rounds = max(1, int(rounds))
        self.extra_info: Dict[str, object] = {}
        self.timings: List[float] = []

    def __call__(self, fn, *args, **kwargs):
        result = fn(*args, **kwargs)  # warm-up (not timed)
        for _ in range(self.rounds):
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            self.timings.append(time.perf_counter() - t0)
        return result

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, **_ignored):
        kwargs = kwargs or {}
        self.rounds = max(1, int(rounds))
        return self(fn, *args, **kwargs)

    def stats(self) -> Dict[str, float]:
        if not self.timings:
            return {}
        return {
            "rounds": len(self.timings),
            "mean_s": sum(self.timings) / len(self.timings),
            "min_s": min(self.timings),
            "max_s": max(self.timings),
        }


def discover(select: Optional[str]) -> List[tuple]:
    """(module name, function name) pairs of every selected benchmark."""
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    try:
        import repro  # noqa: F401 - probe the installed/with-PYTHONPATH case
    except ModuleNotFoundError:
        # Fresh clone without `pip install -e .`: fall back to src layout.
        sys.path.insert(0, str(REPO_ROOT / "src"))
    found = []
    for path in sorted(BENCH_DIR.glob("bench_*.py")):
        module_name = f"benchmarks.{path.stem}"
        module = importlib.import_module(module_name)
        for attr in sorted(dir(module)):
            if not attr.startswith("bench_"):
                continue
            fn = getattr(module, attr)
            if not callable(fn):
                continue
            if select and select not in f"{path.stem}.{attr}":
                continue
            found.append((module_name, attr, fn))
    return found


def run(args: argparse.Namespace) -> int:
    rounds = 1 if args.smoke else args.rounds
    entries = []
    failures = 0
    selected = discover(args.select)
    if not selected:
        print(f"no benchmarks match --select {args.select!r}",
              file=sys.stderr)
        return 2
    for module_name, fn_name, fn in selected:
        shim = HarnessBenchmark(rounds)
        buffer = io.StringIO()
        t0 = time.perf_counter()
        status = "ok"
        error = None
        try:
            with contextlib.redirect_stdout(
                sys.stdout if args.verbose else buffer
            ):
                fn(shim)
        except Exception:  # noqa: BLE001 - keep the harness running
            status = "error"
            error = traceback.format_exc(limit=5)
            failures += 1
        total = time.perf_counter() - t0
        entry = {
            "name": fn_name,
            "module": module_name,
            "status": status,
            "total_seconds": total,
            **shim.stats(),
        }
        if shim.extra_info:
            entry["extra_info"] = shim.extra_info
        if error:
            entry["error"] = error
        entries.append(entry)
        marker = "FAIL" if status == "error" else "ok"
        mean = entry.get("mean_s")
        mean_txt = f"{mean * 1e3:9.2f} ms/round" if mean else " " * 17
        print(f"[{marker:4s}] {fn_name:45s} {mean_txt} "
              f"(total {total:6.2f}s)")
        if error and not args.verbose:
            print(error, file=sys.stderr)

    payload = {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(),
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": rounds,
        "benchmarks": entries,
    }
    # A benchmark can promote its attachments to a named top-level report
    # section (extra_info["bench_section"] = name): cross-cutting results
    # like the parallel-vs-virtual epoch comparison stay addressable
    # without digging through the benchmarks array.  The promoted data
    # moves (not copies) out of the entry, and core payload keys are
    # off-limits as section names.
    for entry in entries:
        info = entry.get("extra_info") or {}
        section = info.get("bench_section")
        if section:
            if section in payload:
                # Never throw away a finished run over a naming clash:
                # leave the data where it is and say so.
                print(f"warning: bench_section {section!r} collides with "
                      f"an existing report key; {entry['name']}'s "
                      "attachments stay in its extra_info",
                      file=sys.stderr)
                continue
            payload[section] = {
                k: v for k, v in info.items() if k != "bench_section"
            }
            entry["extra_info"] = {"bench_section": section}
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2, default=str) + "\n",
                   encoding="utf-8")
    print(f"\nwrote {out} ({len(entries)} benchmarks, "
          f"{failures} failures)")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_dist.json"),
                        help="JSON report path (default: BENCH_dist.json)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per benchmark (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="single round per benchmark (CI smoke)")
    parser.add_argument("--select", help="substring filter on module.name")
    parser.add_argument("--verbose", action="store_true",
                        help="stream benchmark tables to stdout")
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
