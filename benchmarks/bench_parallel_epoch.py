"""Process-backend epochs vs. the executed single-process runtime.

The virtual runtime executes P ranks' kernels sequentially in one
process; the process backend (:mod:`repro.parallel`) runs them as real OS
processes with shared-memory collectives.  This benchmark times one
training epoch both ways on the same workload and records the wall-clock
**speedup** -- the number the backend exists to produce.  Results land in
``BENCH_dist.json`` under a top-level ``parallel_epoch`` section (via the
harness's ``bench_section`` hoisting) alongside ``host_cores``: the
speedup is only meaningful when the host gives the workers real cores
(on a >= 4-core host the 4-worker 1D configuration clears 2x; on a
starved 1-core CI box the same run documents the IPC overhead instead).

Correctness rides along: per-epoch losses from the two backends are
asserted bit-close (<= 1e-12) before any timing is recorded.
"""

from __future__ import annotations

import os
import time

from benchmarks.helpers import attach, print_table

#: Compute-heavy enough that per-rank kernels dominate the per-epoch
#: IPC: the SpMM flops per communicated byte scale with the average
#: degree, so a denser graph is what gives real cores something to
#: parallelise (a few MB of shared-memory traffic per collective either
#: way).
GRAPH = dict(n=4096, avg_degree=32, f=128, n_classes=8, seed=0)
HIDDEN = 64
EPOCHS = 4  # timed epochs per configuration (after one warm-up)

#: (algorithm, P, worker counts, extra kwargs).  1D shards with zero
#: redundant compute, so it is the headline scaling configuration; 2D
#: adds a grid family datapoint.
CONFIGS = [
    ("1d", 4, (2, 4), {}),
    ("2d", 4, (4,), {}),
]


def _dataset():
    from repro.graph import make_synthetic

    return make_synthetic(**GRAPH)


def _virtual_epochs(ds, algorithm, p, extra):
    from repro.dist import make_algorithm

    algo = make_algorithm(algorithm, p, ds, hidden=HIDDEN, **extra)
    algo.setup(ds.features, ds.labels)
    algo.train_epoch(0)  # warm-up: caches, scipy wrappers, workspaces
    losses = []
    t0 = time.perf_counter()
    for e in range(EPOCHS):
        losses.append(algo.train_epoch(e + 1).loss)
    return (time.perf_counter() - t0) / EPOCHS, losses


def _process_epochs(ds, algorithm, p, workers, extra):
    from repro.dist import make_algorithm

    algo = make_algorithm(algorithm, p, ds, hidden=HIDDEN,
                          backend="process", workers=workers, **extra)
    try:
        algo.setup(ds.features, ds.labels)
        algo.train_epoch(0)  # warm-up (spawn cost excluded by design:
        # the pool is a long-lived resource, epochs are the steady state)
        losses = []
        t0 = time.perf_counter()
        for e in range(EPOCHS):
            losses.append(algo.train_epoch(e + 1).loss)
        mean_s = (time.perf_counter() - t0) / EPOCHS
    finally:
        algo.rt.close()
    return mean_s, losses


def bench_parallel_epoch(benchmark):
    ds = _dataset()
    cores = os.cpu_count() or 1
    rows = []
    entries = []
    timed = None  # (algorithm, p, workers, extra) for the harness timer
    for algorithm, p, worker_counts, extra in CONFIGS:
        v_mean, v_losses = _virtual_epochs(ds, algorithm, p, extra)
        for workers in worker_counts:
            p_mean, p_losses = _process_epochs(ds, algorithm, p, workers,
                                               extra)
            drift = max(abs(a - b) for a, b in zip(v_losses, p_losses))
            assert drift <= 1e-12, (
                f"{algorithm} P={p} W={workers}: process losses drifted "
                f"{drift} from the virtual oracle"
            )
            speedup = v_mean / p_mean
            entries.append({
                "algorithm": algorithm,
                "p": p,
                "workers": workers,
                "virtual_mean_s": v_mean,
                "process_mean_s": p_mean,
                "speedup": speedup,
                "max_loss_drift": drift,
            })
            rows.append((algorithm, p, workers,
                         f"{v_mean * 1e3:.1f}", f"{p_mean * 1e3:.1f}",
                         f"{speedup:.2f}x"))
            if workers <= cores and (timed is None or workers > timed[2]):
                timed = (algorithm, p, workers, extra)
    print_table(
        f"parallel epoch (host: {cores} cores)",
        ("algo", "P", "workers", "virtual ms", "process ms", "speedup"),
        rows,
    )
    best = max(e["speedup"] for e in entries)
    # Harness timing: steady-state process-backend epochs on the widest
    # configuration the host can actually parallelise.
    if timed is None:
        algorithm, p, worker_counts, extra = CONFIGS[0]
        timed = (algorithm, p, worker_counts[0], extra)
    algorithm, p, workers, extra = timed
    from repro.dist import make_algorithm

    algo = make_algorithm(algorithm, p, ds, hidden=HIDDEN,
                          backend="process", workers=workers, **extra)
    try:
        algo.setup(ds.features, ds.labels)
        algo.train_epoch(0)
        epoch = [0]

        def one_epoch():
            epoch[0] += 1
            return algo.train_epoch(epoch[0])

        benchmark(one_epoch)
    finally:
        algo.rt.close()
    attach(
        benchmark,
        bench_section="parallel_epoch",
        host_cores=cores,
        graph=GRAPH,
        hidden=HIDDEN,
        epochs_timed=EPOCHS,
        entries=entries,
        best_speedup=best,
        note=(
            "speedup = virtual_mean_s / process_mean_s, steady-state "
            "epochs (pool spawn excluded); expect >= 2x for 1d at 4 "
            "workers on a >= 4-core host, < 1x on starved hosts where "
            "workers share one core"
        ),
    )
