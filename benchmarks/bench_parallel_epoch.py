"""Process-backend epochs vs. the executed single-process runtime.

The virtual runtime executes P ranks' kernels sequentially in one
process; the process backend (:mod:`repro.parallel`) runs them as real OS
processes with resident workers -- ``fit`` is **one driver dispatch** and
the epoch loop runs worker-side.  This benchmark times steady-state
training epochs both ways (through ``fit``, the resident hot path) on the
same workload, for each transport (``shm`` and ``tcp`` on loopback), and
records the wall-clock **speedup** plus the dispatch counters the
core-count-independent perf gate checks.  Results land in
``BENCH_dist.json`` under a top-level ``parallel_epoch`` section (via the
harness's ``bench_section`` hoisting) alongside ``host_cores``: the
speedup is only meaningful when the host gives the workers real cores
(on a >= 4-core host the 4-worker 1D configuration clears 2x; on a
starved 1-core CI box the same run documents the IPC overhead instead,
and the ``dispatch`` subsection stands in as the regression gate).

Correctness rides along: per-epoch losses from the two backends are
asserted bit-close (<= 1e-12) before any timing is recorded.
"""

from __future__ import annotations

import os
import time

from benchmarks.helpers import attach, print_table

#: Compute-heavy enough that per-rank kernels dominate the per-epoch
#: IPC: the SpMM flops per communicated byte scale with the average
#: degree, so a denser graph is what gives real cores something to
#: parallelise (a few MB of shared-memory traffic per collective either
#: way).
GRAPH = dict(n=4096, avg_degree=32, f=128, n_classes=8, seed=0)
HIDDEN = 64
EPOCHS = 4  # timed epochs per configuration (after one warm-up fit)

#: (algorithm, P, worker counts, transports, extra kwargs).  1D shards
#: with zero redundant compute, so it is the headline scaling
#: configuration and carries the transport comparison; 2D adds a grid
#: family datapoint.
CONFIGS = [
    ("1d", 4, (2, 4), ("shm", "tcp"), {}),
    ("2d", 4, (4,), ("shm",), {}),
]


def _dataset():
    from repro.graph import make_synthetic

    return make_synthetic(**GRAPH)


def _fit_epochs(algo, ds):
    """Warm-up fit + timed fit; returns (mean seconds/epoch, losses)."""
    algo.fit(ds.features, ds.labels, epochs=1)  # warm-up: caches,
    # scipy wrappers, setup-time workspaces
    t0 = time.perf_counter()
    hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
    mean_s = (time.perf_counter() - t0) / EPOCHS
    return mean_s, [e.loss for e in hist.epochs]


def _virtual_epochs(ds, algorithm, p, extra):
    from repro.dist import make_algorithm

    algo = make_algorithm(algorithm, p, ds, hidden=HIDDEN, **extra)
    return _fit_epochs(algo, ds)


def _process_epochs(ds, algorithm, p, workers, transport, extra):
    """Times the resident fit; also returns the dispatch/traffic stats
    deltas for the timed fit (the perf-gate numbers)."""
    from repro.dist import make_algorithm

    algo = make_algorithm(algorithm, p, ds, hidden=HIDDEN,
                          backend="process", workers=workers,
                          transport=transport, **extra)
    try:
        algo.fit(ds.features, ds.labels, epochs=1)  # warm-up (spawn cost
        # excluded by design: the pool is a long-lived resource, epochs
        # are the steady state)
        before = algo.rt.backend_stats(workers=False)
        t0 = time.perf_counter()
        hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
        mean_s = (time.perf_counter() - t0) / EPOCHS
        after = algo.rt.backend_stats()
    finally:
        algo.rt.close()
    dispatch = {
        "fit_dispatches": after["fit_dispatches"] - before["fit_dispatches"],
        "dispatches": after["dispatches"] - before["dispatches"],
        # (the stats read-out's own dispatch is excluded from its
        # snapshot, so no correction is needed)
        "digest_checks": after["digest_checks"] - before["digest_checks"],
        "epochs": EPOCHS,
        "channel_bytes": after["channel_bytes"],
    }
    return mean_s, [e.loss for e in hist.epochs], dispatch


def bench_parallel_epoch(benchmark):
    ds = _dataset()
    cores = os.cpu_count() or 1
    rows = []
    entries = []
    timed = None  # (algorithm, p, workers, extra) for the harness timer
    for algorithm, p, worker_counts, transports, extra in CONFIGS:
        v_mean, v_losses = _virtual_epochs(ds, algorithm, p, extra)
        for workers in worker_counts:
            for transport in transports:
                p_mean, p_losses, dispatch = _process_epochs(
                    ds, algorithm, p, workers, transport, extra)
                drift = max(abs(a - b)
                            for a, b in zip(v_losses, p_losses))
                assert drift <= 1e-12, (
                    f"{algorithm} P={p} W={workers} [{transport}]: "
                    f"process losses drifted {drift} from the virtual "
                    "oracle"
                )
                speedup = v_mean / p_mean
                entries.append({
                    "algorithm": algorithm,
                    "p": p,
                    "workers": workers,
                    "transport": transport,
                    "virtual_mean_s": v_mean,
                    "process_mean_s": p_mean,
                    "speedup": speedup,
                    "max_loss_drift": drift,
                    "fit_dispatches": dispatch["fit_dispatches"],
                    "dispatches_per_epoch":
                        dispatch["dispatches"] / EPOCHS,
                    "channel_bytes": dispatch["channel_bytes"],
                })
                rows.append((algorithm, p, workers, transport,
                             f"{v_mean * 1e3:.1f}",
                             f"{p_mean * 1e3:.1f}", f"{speedup:.2f}x",
                             str(dispatch["dispatches"])))
                if (transport == "shm" and workers <= cores
                        and (timed is None or workers > timed[2])):
                    timed = (algorithm, p, workers, extra)
    print_table(
        f"parallel epoch (host: {cores} cores)",
        ("algo", "P", "workers", "transport", "virtual ms", "process ms",
         "speedup", "fit dispatches"),
        rows,
    )
    best = max(e["speedup"] for e in entries)
    # The core-count-independent gate numbers: the resident hot path must
    # stay O(1) dispatches per fit regardless of epochs (one fit dispatch
    # for the whole timed run).
    shm = [e for e in entries if e["transport"] == "shm"]
    dispatch_summary = {
        "epochs": EPOCHS,
        "fit_dispatches": max(e["fit_dispatches"] for e in shm),
        "dispatches_per_epoch": max(e["dispatches_per_epoch"]
                                    for e in shm),
    }
    # Harness timing: steady-state process-backend epochs on the widest
    # configuration the host can actually parallelise.
    if timed is None:
        algorithm, p, worker_counts, _transports, extra = CONFIGS[0]
        timed = (algorithm, p, worker_counts[0], extra)
    algorithm, p, workers, extra = timed
    from repro.dist import make_algorithm

    algo = make_algorithm(algorithm, p, ds, hidden=HIDDEN,
                          backend="process", workers=workers, **extra)
    try:
        algo.setup(ds.features, ds.labels)
        algo.train_epoch(0)
        epoch = [0]

        def one_epoch():
            epoch[0] += 1
            return algo.train_epoch(epoch[0])

        benchmark(one_epoch)
    finally:
        algo.rt.close()
    attach(
        benchmark,
        bench_section="parallel_epoch",
        host_cores=cores,
        graph=GRAPH,
        hidden=HIDDEN,
        epochs_timed=EPOCHS,
        entries=entries,
        best_speedup=best,
        dispatch=dispatch_summary,
        note=(
            "speedup = virtual_mean_s / process_mean_s through fit() "
            "(resident workers: one dispatch per fit, pool spawn "
            "excluded); expect >= 2x for 1d at 4 workers on a >= 4-core "
            "host, < 1x on starved hosts where workers share one core -- "
            "there the 'dispatch' subsection is the enforceable gate"
        ),
    )
