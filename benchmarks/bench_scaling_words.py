"""Headline claim: words moved by 1D vs 1.5D vs 2D vs 3D (Section IV).

Two layers of evidence:

* **Analytic** -- the paper's closed-form per-epoch word counts at the
  protein dataset's published size, swept over P.  Checks the two
  asymptotic claims: 2D moves ``O(sqrt(P))`` fewer words than 1D, and 3D
  improves on 2D by another ``O(P^(1/6))``.
* **Measured** -- per-rank communication bytes of the *executed*
  algorithms on a shared synthetic graph at P = 16 and P = 64, confirming
  the executed implementations track the analysis.
"""

import math

from repro.analysis.formulas import words_15d, words_1d, words_2d, words_3d
from repro.dist import make_algorithm
from repro.graph import make_synthetic, published_spec

from benchmarks.helpers import attach, print_table


def bench_words_analytic_sweep(benchmark):
    spec = published_spec("protein")
    n, nnz, f, L = spec.vertices, spec.edges, 128.0, 3
    rows = []
    for p in (16, 64, 256, 1024, 4096):
        w1 = words_1d(n, nnz, f, L, p).words
        # Largest power-of-two replication not above the optimum sqrt(P/2)
        # (and guaranteed to divide the power-of-two P).
        c_star = 2 ** int(math.log2(max(math.sqrt(p / 2), 1)))
        w15 = words_15d(n, nnz, f, L, p, c=c_star).words
        w2 = words_2d(n, nnz, f, L, p).words
        w3 = words_3d(n, nnz, f, L, p).words
        rows.append(
            (p, f"{w1:.3e}", f"{w15:.3e}", f"{w2:.3e}", f"{w3:.3e}",
             round(w1 / w2, 2), round(w2 / w3, 2))
        )
    print_table(
        "Per-process words per epoch (protein published size, analytic)",
        ("P", "1D", "1.5D(c*)", "2D", "3D", "1D/2D", "2D/3D"),
        rows,
    )
    # 1D/2D ratio grows ~ sqrt(P)/5; 2D/3D ~ (10/14) P^(1/6).
    r_64 = words_1d(n, nnz, f, L, 64).words / words_2d(n, nnz, f, L, 64).words
    r_4096 = (
        words_1d(n, nnz, f, L, 4096).words / words_2d(n, nnz, f, L, 4096).words
    )
    assert r_4096 / r_64 > 6  # sqrt(4096/64) = 8, with slack
    benchmark(words_2d, n, nnz, f, L, 1024)
    attach(benchmark, ratio_1d_2d_at_4096=round(r_4096, 2))


def bench_words_measured_execution(benchmark):
    ds = make_synthetic(n=640, avg_degree=8, f=32, n_classes=4, seed=0)
    results = {}
    for name, p, kwargs in (
        ("1d", 16, {}),
        ("1.5d", 16, {"replication": 2}),
        ("2d", 16, {}),
        ("3d", 64, {}),
        ("2d@64", 64, {}),
        ("1d@64", 64, {}),
    ):
        algo = make_algorithm(name.split("@")[0], p, ds, hidden=16, seed=0,
                              **kwargs)
        algo.setup(ds.features, ds.labels)
        st = algo.train_epoch(0)
        results[name] = st.max_rank_comm_bytes
    rows = [(k, v) for k, v in results.items()]
    print_table(
        "Measured per-rank comm bytes per epoch (synthetic n=640, d=8, f=32)",
        ("algorithm@P", "max rank bytes"),
        rows,
    )
    # Executed orderings mirror the analysis at P = 64: 3D < 2D < 1D.
    assert results["3d"] < results["2d@64"] < results["1d@64"]

    algo = make_algorithm("2d", 16, ds, hidden=16, seed=0)
    algo.setup(ds.features, ds.labels)
    benchmark(algo.train_epoch)
    attach(benchmark, measured=results)
