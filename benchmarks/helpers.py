"""Shared helpers for the benchmark harness.

Every benchmark prints the table/series it regenerates (run with ``-s`` to
see it inline; the same numbers are attached to the pytest-benchmark
report via ``extra_info``) and times a representative computation through
the ``benchmark`` fixture.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render and print a fixed-width table; returns the rendered text."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    return text


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


def attach(benchmark, **info) -> None:
    """Attach key figures to the pytest-benchmark report."""
    for k, v in info.items():
        benchmark.extra_info[k] = v
