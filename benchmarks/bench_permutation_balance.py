"""Section I ablation: random vertex permutation for load balance.

"[The] 2D and 3D algorithms also automatically address load balance
through a combination of random vertex permutations and the implicit
partitioning of the adjacencies of high-degree vertices."

We build an adversarially ordered scale-free graph (hubs packed first),
2D-partition it with and without the permutation, and measure block-nnz
imbalance plus the executed epoch's SpMM wall-clock (bulk-synchronous:
the heaviest block sets the pace).
"""

from repro.comm.mesh import Mesh2D
from repro.comm.tracker import Category
from repro.dist import make_algorithm
from repro.graph import make_synthetic
from repro.graph.datasets import Dataset
from repro.graph.permutation import apply_random_permutation
from repro.sparse import distribute_sparse_2d
from repro.graph.permutation import block_nnz_imbalance

from benchmarks.helpers import attach, print_table

P = 16


def _adversarial_dataset():
    """R-MAT already places heavy vertices at low ids (quadrant 'a' bias),
    which is exactly the adversarial contiguous layout."""
    return make_synthetic(n=1024, avg_degree=16, f=16, n_classes=4, seed=0)


def bench_permutation_load_balance(benchmark):
    ds = _adversarial_dataset()
    mesh = Mesh2D.square(P)
    imb_before = block_nnz_imbalance(distribute_sparse_2d(ds.adjacency, mesh))
    a2, f2, y2, _perm = apply_random_permutation(
        ds.adjacency, ds.features, ds.labels, seed=1
    )
    imb_after = block_nnz_imbalance(distribute_sparse_2d(a2, mesh))

    def epoch_spmm_seconds(adj, feats, labels):
        dsx = Dataset(
            name="x", adjacency=adj, features=feats, labels=labels,
            num_classes=ds.num_classes, train_mask=ds.train_mask,
        )
        algo = make_algorithm("2d", P, dsx, hidden=16, seed=0)
        algo.setup(feats, labels)
        st = algo.train_epoch(0)
        return st.seconds_by_category[Category.SPMM]

    spmm_before = epoch_spmm_seconds(ds.adjacency, ds.features, ds.labels)
    spmm_after = epoch_spmm_seconds(a2, f2, y2)

    rows = [
        ("natural (hubs packed)", round(imb_before, 3),
         round(spmm_before * 1e3, 3)),
        ("random permutation", round(imb_after, 3),
         round(spmm_after * 1e3, 3)),
    ]
    print_table(
        f"Random-vertex-permutation ablation, 2D P={P} "
        f"(R-MAT n=1024, d=16)",
        ("layout", "block nnz imbalance", "epoch spmm ms"),
        rows,
    )
    assert imb_after < imb_before
    assert spmm_after <= spmm_before * 1.05  # permutation never hurts much

    algo_ds = Dataset(
        name="perm", adjacency=a2, features=f2, labels=y2,
        num_classes=ds.num_classes, train_mask=ds.train_mask,
    )
    algo = make_algorithm("2d", P, algo_ds, hidden=16, seed=0)
    algo.setup(f2, y2)
    benchmark(algo.train_epoch)
    attach(
        benchmark,
        imbalance_before=round(imb_before, 4),
        imbalance_after=round(imb_after, 4),
    )
