"""Section IV-C.6: rectangular process grids.

The paper: taller grids (larger Pr/Pc) cut *sparse* communication when the
average degree far exceeds the feature width, but inflate the *dense*
terms, whose sum is minimised by the square grid ("square has the
smallest perimeter of all rectangles of a given area").  We execute every
Pr x Pc factorisation of P = 16 on one graph and measure both categories.
"""

from repro.comm.tracker import Category
from repro.dist import make_algorithm
from repro.graph import make_synthetic

from benchmarks.helpers import attach, print_table

P = 16
GRIDS = [(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)]


def bench_rectangular_grids(benchmark):
    # Degree >> feature width: the regime where tall grids save scomm.
    ds = make_synthetic(n=512, avg_degree=24, f=8, n_classes=4, seed=0)
    results = {}
    for rows_, cols_ in GRIDS:
        algo = make_algorithm(
            "2d", P, ds, hidden=8, seed=0, grid=(rows_, cols_)
        )
        algo.setup(ds.features, ds.labels)
        st = algo.train_epoch(0)
        results[(rows_, cols_)] = st

    table = []
    for grid, st in results.items():
        table.append(
            (
                f"{grid[0]}x{grid[1]}",
                st.scomm_bytes,
                st.dcomm_bytes,
                st.scomm_bytes + st.dcomm_bytes,
                round(st.modeled_seconds * 1e3, 3),
            )
        )
    print_table(
        f"Rectangular grids at P={P} (n=512, d=24, f=8; executed, "
        f"total bytes over ranks)",
        ("grid PrxPc", "scomm", "dcomm", "comm total", "epoch ms"),
        table,
    )

    dense = {g: st.dcomm_bytes for g, st in results.items()}
    sparse = {g: st.scomm_bytes for g, st in results.items()}
    # Taller grid (Pr > Pc) moves less sparse data than the wide one...
    assert sparse[(8, 2)] < sparse[(2, 8)]
    # ...but the square grid minimises the dense total among non-trivial
    # factorisations (perimeter argument).
    nontrivial = [(2, 8), (4, 4), (8, 2)]
    assert min(nontrivial, key=lambda g: dense[g]) == (4, 4)

    algo = make_algorithm("2d", P, ds, hidden=8, seed=0, grid=(4, 4))
    algo.setup(ds.features, ds.labels)
    benchmark(algo.train_epoch)
    attach(
        benchmark,
        dense_by_grid={f"{a}x{b}": v for (a, b), v in dense.items()},
        sparse_by_grid={f"{a}x{b}": v for (a, b), v in sparse.items()},
    )
