"""Section IV-A.3 ablation: sparse vs dense 1D backward intermediates.

The 1D backward forms per-process partials ``A_i G^l_i`` (size n x f
dense).  The paper's expectation analysis (via Ballard et al.): for an
Erdos-Renyi graph only ``~ n(1 - e^{-d/P})`` rows are nonempty, so sparse
storage costs ``O(dnf/P)`` words vs ``O(nf)`` dense, winning once
``P > d``.  We verify the expectation against measured non-empty rows and
print the storage crossover.
"""

import numpy as np

from repro.graph.generators import erdos_renyi
from repro.sparse import (
    block_sparsity_stats,
    distribute_sparse_1d_cols,
    expected_nonempty_rows,
    sparse_vs_dense_intermediate_words,
)

from benchmarks.helpers import attach, print_table

N, D, F = 8000, 12.0, 64


def bench_outer_product_intermediate_storage(benchmark):
    a = erdos_renyi(N, D, seed=0)
    d_actual = a.nnz / N
    rows = []
    for p in (2, 4, 8, 16, 32, 64, 128):
        blocks = distribute_sparse_1d_cols(a, p)
        measured = float(np.mean(
            [block_sparsity_stats(b).nonempty_rows for b in blocks.values()]
        ))
        expected = expected_nonempty_rows(N, d_actual, p)
        words = sparse_vs_dense_intermediate_words(N, d_actual, F, p)
        rows.append(
            (
                p, int(measured), int(expected),
                f"{words['sparse_words']:.3e}",
                f"{words['dense_words']:.3e}",
                "sparse" if words["sparse_wins"] else "dense",
            )
        )
        assert abs(measured - expected) / expected < 0.05
    print_table(
        f"1D backward intermediate A_i G_i storage (ER n={N}, d={d_actual:.1f}, "
        f"f={F})",
        ("P", "nonempty rows (meas)", "expected", "sparse words",
         "dense words", "cheaper"),
        rows,
    )
    print(f"\ncrossover at P ~ d = {d_actual:.1f} (paper: sparse wins at "
          f"large scale, i.e. P > d)")
    winners = {r[0]: r[5] for r in rows}
    assert winners[4] == "dense" and winners[64] == "sparse"

    benchmark(distribute_sparse_1d_cols, a, 32)
    attach(benchmark, crossover_degree=round(d_actual, 2))


def bench_sparse_reduction_executed(benchmark):
    """The SparCML-style reduction, executed: the ``outer_sparse`` 1D
    variant ships only nonzero partial rows; measured dense bytes must
    fall below the dense reduce-scatter's once P > d, with identical
    numerics (asserted in tests/test_sparse_reduction.py)."""
    import numpy as np

    from repro.comm import VirtualRuntime
    from repro.dist.algo_1d import DistGCN1D
    from repro.graph import make_synthetic

    ds = make_synthetic(
        n=400, avg_degree=3, f=16, n_classes=4, seed=1,
        generator="erdos_renyi",
    )
    rows = []
    measured = {}
    for p in (4, 16, 32):
        per_variant = {}
        for variant in ("outer", "outer_sparse"):
            rt = VirtualRuntime.make_1d(p)
            algo = DistGCN1D(
                rt, ds.adjacency, (16, 8, 4), seed=0, variant=variant
            )
            algo.setup(ds.features, ds.labels)
            per_variant[variant] = algo.train_epoch(0).dcomm_bytes
        saving = 1 - per_variant["outer_sparse"] / per_variant["outer"]
        measured[p] = saving
        rows.append(
            (p, per_variant["outer"], per_variant["outer_sparse"],
             f"{saving:.1%}")
        )
    print_table(
        "Executed sparse vs dense backward reduction (ER n=400, d~4, f=16)",
        ("P", "dense dcomm B", "sparse dcomm B", "saving"),
        rows,
    )
    assert measured[32] > measured[4]   # savings grow with P
    assert measured[32] > 0.1

    rt = VirtualRuntime.make_1d(16)
    algo = DistGCN1D(rt, ds.adjacency, (16, 8, 4), seed=0,
                     variant="outer_sparse")
    algo.setup(ds.features, ds.labels)
    benchmark(algo.train_epoch)
    attach(benchmark, savings={str(k): round(v, 4) for k, v in measured.items()})
