"""Checkpoint overhead on the resident process backend.

ISSUE 8's perf contract: epoch-boundary checkpointing is *insurance*,
not a tax.  This benchmark times the same resident ``fit`` with and
without ``checkpoint_every=1`` (losses and ledger digest asserted
bit-equal first -- writing a checkpoint must not move the training
math), and records the overhead ratio plus the workers' own
``checkpoint_seconds`` accounting.  Results land in ``BENCH_dist.json``
under a top-level ``checkpoint`` section; the <= 5 % overhead gate in
``check_regression.py`` only fires on hosts with >= 4 real cores -- on
a starved box the workers time-share one core and scheduler noise
swamps the write cost, so the numbers are recorded but the gate reports
a skip.
"""

from __future__ import annotations

import os
import tempfile
import time

from benchmarks.helpers import attach, print_table

#: Same shape as bench_obs_overhead: compute-heavy enough that epochs
#: dominate IPC, small enough to stay quick on CI.
GRAPH = dict(n=2048, avg_degree=16, f=64, n_classes=8, seed=0)
HIDDEN = 32
EPOCHS = 4  # timed epochs per fit (after one warm-up fit)
CONFIG = dict(algorithm="1d", p=4, workers=2, transport="shm",
              variant="ghost")


def _fit(ds, checkpoint_path):
    from repro.dist import make_algorithm
    from repro.parallel.runtime import ledger_digest

    algo = make_algorithm(
        CONFIG["algorithm"], CONFIG["p"], ds, hidden=HIDDEN, seed=0,
        backend="process", workers=CONFIG["workers"],
        transport=CONFIG["transport"], variant=CONFIG["variant"])
    try:
        algo.fit(ds.features, ds.labels, epochs=1)  # warm-up fit
        kw = {}
        if checkpoint_path is not None:
            kw = dict(checkpoint_path=checkpoint_path, checkpoint_every=1)
        t0 = time.perf_counter()
        hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS, **kw)
        wall = time.perf_counter() - t0
        losses = [e.loss for e in hist.epochs]
        digest = ledger_digest(algo.rt.tracker)
        stats = algo.rt.backend_stats()
        return wall, losses, digest, stats
    finally:
        algo.rt.close()


def bench_checkpoint(benchmark):
    from repro.graph import make_synthetic

    cores = os.cpu_count() or 1
    ds = make_synthetic(**GRAPH)

    with tempfile.TemporaryDirectory() as tmp:
        ck = os.path.join(tmp, "bench.npz")
        plain_s, losses0, digest0, _ = _fit(ds, checkpoint_path=None)
        ckpt_s, losses1, digest1, stats = _fit(ds, checkpoint_path=ck)
        ck_bytes = os.path.getsize(ck)

    # Neutrality before any timing is reported: writing checkpoints must
    # not move a single bit of the training math or the ledger.
    assert losses1 == losses0, "checkpointing changed the losses"
    assert digest1 == digest0, "checkpointing changed the ledger digest"
    assert stats["checkpoints_written"] == EPOCHS

    overhead = ckpt_s / plain_s
    write_s = stats["checkpoint_seconds"]
    print_table(
        f"checkpoint overhead (host: {cores} cores, "
        f"{CONFIG['algorithm']} P={CONFIG['p']} "
        f"W={CONFIG['workers']} [{CONFIG['transport']}])",
        ("metric", "value"),
        [
            ("plain fit", f"{plain_s * 1e3:.1f} ms"),
            ("checkpointed fit", f"{ckpt_s * 1e3:.1f} ms"),
            ("overhead ratio", f"{overhead:.3f}"),
            ("writes", f"{stats['checkpoints_written']}"),
            ("write wall (worker 0)", f"{write_s * 1e3:.1f} ms"),
            ("checkpoint size", f"{ck_bytes / 1024:.1f} KiB"),
        ],
    )

    # Harness timing: one checkpointed epoch on the resident backend.
    from repro.dist import make_algorithm

    algo = make_algorithm(
        CONFIG["algorithm"], CONFIG["p"], ds, hidden=HIDDEN, seed=0,
        backend="process", workers=CONFIG["workers"],
        transport=CONFIG["transport"], variant=CONFIG["variant"])
    tmpdir = tempfile.TemporaryDirectory()
    try:
        algo.fit(ds.features, ds.labels, epochs=1)  # warm-up
        path = os.path.join(tmpdir.name, "epoch.npz")

        def checkpointed_fit_once():
            return algo.fit(ds.features, ds.labels, epochs=1,
                            checkpoint_path=path, checkpoint_every=1)

        benchmark(checkpointed_fit_once)
    finally:
        algo.rt.close()
        tmpdir.cleanup()

    attach(
        benchmark,
        bench_section="checkpoint",
        host_cores=cores,
        graph=GRAPH,
        hidden=HIDDEN,
        epochs_timed=EPOCHS,
        config=CONFIG,
        plain_s=plain_s,
        checkpointed_s=ckpt_s,
        overhead_ratio=overhead,
        checkpoints_written=stats["checkpoints_written"],
        checkpoint_write_s=write_s,
        checkpoint_bytes=ck_bytes,
        note=(
            "overhead_ratio = checkpointed_s / plain_s through fit() "
            "with checkpoint_every=1 (every epoch -- the worst case; "
            "real runs checkpoint far less often) on the resident "
            "process backend; the <= 1.05 gate in check_regression.py "
            "applies only when host_cores >= 4 (time-shared workers on "
            "starved hosts make wall ratios scheduler noise)"
        ),
    )
