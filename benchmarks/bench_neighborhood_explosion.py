"""Section I motivation: the neighbourhood explosion.

"After only a few layers, the chosen mini-batch ends up being dependent on
the whole graph.  This phenomenon, known as the neighborhood explosion,
completely nullifies the memory reduction goals [of mini-batching]."

Measures the receptive field of random mini-batches hop by hop on the
Reddit stand-in, plus the sampled-pyramid sizes that motivate sampling --
and the gradient-variance price sampling pays (the "approximation errors"
of Section I).
"""

import numpy as np

from repro.graph import make_standin
from repro.sampling import LayerSampler, neighborhood_explosion_stats

from benchmarks.helpers import attach, print_table


def bench_neighborhood_explosion(benchmark):
    ds = make_standin("reddit", scale_divisor=256, seed=0)
    n = ds.num_vertices
    rows = []
    fractions = {}
    for batch in (8, 32, 128):
        stats = neighborhood_explosion_stats(
            ds.adjacency, batch_size=batch, hops=3, trials=3, seed=1
        )
        sizes = stats.mean_frontier_sizes
        fractions[batch] = stats.final_fraction
        rows.append(
            (
                batch,
                *(int(s) for s in sizes),
                f"{stats.final_fraction:.1%}",
                round(stats.blowup, 1),
            )
        )
    print_table(
        f"Neighbourhood explosion on the reddit stand-in (n={n}, 3-layer "
        f"receptive field)",
        ("batch", "hop0", "hop1", "hop2", "hop3", "graph fraction",
         "blow-up"),
        rows,
    )
    print("\npaper (Section I): a mini-batch 'ends up being dependent on "
          "the whole graph'\nafter a few layers -- hence full-batch "
          "distributed training.")
    # Even an 8-vertex batch must reach a large fraction of this dense
    # stand-in within 3 hops.
    assert fractions[8] > 0.5
    assert fractions[128] > 0.9

    # What sampling buys: pyramid edges with and without fanouts.
    sampler_full = LayerSampler(ds.adjacency, 3, fanouts=None, seed=0)
    sampler_s = LayerSampler(ds.adjacency, 3, fanouts=[5, 5, 5], seed=0)
    batch = np.arange(32)
    full_edges = sampler_full.sample(batch).total_edges()
    samp_edges = sampler_s.sample(batch).total_edges()
    print(f"\n32-vertex batch pyramid edges: full {full_edges}, "
          f"fanout-5 sampled {samp_edges} "
          f"({samp_edges / full_edges:.1%} of full)")
    assert samp_edges < 0.3 * full_edges

    benchmark(
        neighborhood_explosion_stats,
        ds.adjacency, 32, 3, 2, 0,
    )
    attach(benchmark, graph_fraction_batch8=round(fractions[8], 4))


def bench_sampling_accuracy_tradeoff(benchmark):
    """The ROC-derived claim: "sampling based methods can lead to lower
    accuracy" -- full-neighbourhood training reaches a lower loss than
    aggressively sampled training on the same budget."""
    from repro.graph import make_synthetic
    from repro.nn import SGD
    from repro.sampling import MiniBatchGCN, MiniBatchTrainer

    ds = make_synthetic(n=300, avg_degree=8, f=16, n_classes=4, seed=2)
    widths = ds.layer_widths(hidden=16)
    losses = {}
    for label, fanouts in (("full", None), ("fanout-2", [2, 2, 2])):
        model = MiniBatchGCN(widths, seed=0)
        trainer = MiniBatchTrainer(
            model, ds.adjacency, fanouts=fanouts, batch_size=60,
            optimizer=SGD(lr=0.3), seed=1,
        )
        history = trainer.train(ds.features, ds.labels, epochs=12)
        losses[label] = history[-1].mean_loss
    print_table(
        "Sampling vs full-neighbourhood mini-batch training (12 epochs)",
        ("neighbourhood", "final mean loss"),
        sorted(losses.items()),
    )
    assert losses["full"] <= losses["fanout-2"] + 0.05

    model = MiniBatchGCN(widths, seed=0)
    trainer = MiniBatchTrainer(
        model, ds.adjacency, fanouts=[2, 2, 2], batch_size=60,
        optimizer=SGD(lr=0.3), seed=1,
    )
    benchmark(trainer.train_epoch, ds.features, ds.labels)
    attach(benchmark, final_losses={k: round(v, 4) for k, v in losses.items()})
