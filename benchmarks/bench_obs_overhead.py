"""Tracing overhead and model-vs-measured drift on the process backend.

ISSUE 7's perf contract: span tracing is an *observer*.  This benchmark
times the same resident ``fit`` untraced and traced (same transport,
same workers, losses asserted bit-equal first) and records the overhead
ratio, the measured per-category epoch breakdown the spans produce, the
modeled breakdown from the ledger, and their drift ratios.  Results land
in ``BENCH_dist.json`` under a top-level ``obs`` section (via the
harness's ``bench_section`` hoisting) alongside ``host_cores``: the
<= 10 % overhead gate in ``check_regression.py`` only fires on hosts
with >= 4 real cores -- on a starved box the workers time-share one core
and scheduler noise swamps the tracing cost, so the numbers are recorded
but the gate reports a skip.
"""

from __future__ import annotations

import os
import time

from benchmarks.helpers import attach, print_table

#: Same shape philosophy as bench_parallel_epoch: compute-heavy enough
#: that epochs dominate IPC, small enough to stay quick on CI.
GRAPH = dict(n=2048, avg_degree=16, f=64, n_classes=8, seed=0)
HIDDEN = 32
EPOCHS = 4  # timed epochs per fit (after one warm-up fit)
CONFIG = dict(algorithm="1d", p=4, workers=2, transport="shm",
              variant="ghost")


def _fit(ds, trace, profile=False):
    from repro.dist import make_algorithm
    from repro.parallel.runtime import ledger_digest

    algo = make_algorithm(
        CONFIG["algorithm"], CONFIG["p"], ds, hidden=HIDDEN, seed=0,
        backend="process", workers=CONFIG["workers"],
        transport=CONFIG["transport"], variant=CONFIG["variant"])
    try:
        algo.fit(ds.features, ds.labels, epochs=1)  # warm-up fit
        trace_arg = None
        if trace:
            trace_arg = {"profile": True} if profile else True
        t0 = time.perf_counter()
        hist = algo.fit(ds.features, ds.labels, epochs=EPOCHS,
                        trace=trace_arg)
        wall = time.perf_counter() - t0
        losses = [e.loss for e in hist.epochs]
        digest = ledger_digest(algo.rt.tracker)
        modeled = hist.mean_breakdown(skip_first=True)
        return wall, losses, digest, modeled, algo.last_trace
    finally:
        algo.rt.close()


def bench_obs_overhead(benchmark):
    from repro.graph import make_synthetic

    cores = os.cpu_count() or 1
    ds = make_synthetic(**GRAPH)

    untraced_s, losses0, digest0, modeled, _ = _fit(ds, trace=False)
    traced_s, losses1, digest1, _, trace = _fit(ds, trace=True)

    # Neutrality before any timing is reported: tracing must not move a
    # single bit of the training math or the ledger.
    assert losses1 == losses0, "tracing changed the losses"
    assert digest1 == digest0, "tracing changed the ledger digest"
    assert trace is not None

    overhead = traced_s / untraced_s
    measured = trace.measured_epoch_breakdown(skip_first=True)
    drift = {
        cat: (measured.get(cat, 0.0) / modeled[cat]
              if modeled.get(cat) else None)
        for cat in sorted(set(modeled) | set(measured))
    }
    rows = [
        (cat,
         f"{modeled.get(cat, 0.0) * 1e3:.3f}",
         f"{measured.get(cat, 0.0) * 1e3:.3f}",
         f"{drift[cat]:.2f}x" if drift[cat] is not None else "-")
        for cat in sorted(set(modeled) | set(measured))
    ]
    print_table(
        f"obs overhead (host: {cores} cores, "
        f"{CONFIG['algorithm']} P={CONFIG['p']} "
        f"W={CONFIG['workers']} [{CONFIG['transport']}]): "
        f"untraced {untraced_s * 1e3:.1f} ms, traced "
        f"{traced_s * 1e3:.1f} ms, ratio {overhead:.3f}",
        ("category", "modeled ms/epoch", "measured ms/epoch", "drift"),
        rows,
    )

    # Harness timing: the traced resident fit (the new hot path).
    from repro.dist import make_algorithm

    algo = make_algorithm(
        CONFIG["algorithm"], CONFIG["p"], ds, hidden=HIDDEN, seed=0,
        backend="process", workers=CONFIG["workers"],
        transport=CONFIG["transport"], variant=CONFIG["variant"])
    try:
        algo.fit(ds.features, ds.labels, epochs=1)  # warm-up

        def traced_fit_once():
            return algo.fit(ds.features, ds.labels, epochs=1, trace=True)

        benchmark(traced_fit_once)
    finally:
        algo.rt.close()

    attach(
        benchmark,
        bench_section="obs",
        host_cores=cores,
        graph=GRAPH,
        hidden=HIDDEN,
        epochs_timed=EPOCHS,
        config=CONFIG,
        untraced_s=untraced_s,
        traced_s=traced_s,
        overhead_ratio=overhead,
        modeled_epoch_breakdown=modeled,
        measured_epoch_breakdown=measured,
        drift_ratio=drift,
        stragglers={str(k): v for k, v in trace.straggler_counts().items()},
        exchange=trace.exchange_summary(),
        note=(
            "overhead_ratio = traced_s / untraced_s through fit() on the "
            "resident process backend; the <= 1.10 gate in "
            "check_regression.py applies only when host_cores >= 4 "
            "(time-shared workers on starved hosts make wall ratios "
            "scheduler noise).  drift_ratio = measured / modeled seconds "
            "per category; trpose is charge-only (no data-plane call) so "
            "its measured share is ~0 by design"
        ),
    )


def bench_obs_profile(benchmark):
    """Kernel-profiling overhead: untraced vs traced+profiled fit.

    ISSUE 9 extends the observer contract to per-kernel flop/byte
    counters (spmm, the three GEMM funnels, reduction folds).  Profiled
    runs must stay bit-equal in losses and ledger digests, and the
    combined trace+profile overhead shares the same <= 1.10 gate (with
    the same host_cores >= 4 skip) as plain tracing.  Results land under
    a top-level ``obs_profile`` section of ``BENCH_dist.json``.
    """
    from repro.graph import make_synthetic

    cores = os.cpu_count() or 1
    ds = make_synthetic(**GRAPH)

    untraced_s, losses0, digest0, _, _ = _fit(ds, trace=False)
    profiled_s, losses1, digest1, _, trace = _fit(
        ds, trace=True, profile=True)

    assert losses1 == losses0, "profiling changed the losses"
    assert digest1 == digest0, "profiling changed the ledger digest"
    assert trace is not None
    prof = trace.profile_summary()
    assert prof and prof.get("kernels"), "profiled trace has no kernels"

    overhead = profiled_s / untraced_s
    kernels = prof["kernels"]
    rows = [
        (name,
         str(k["calls"]),
         f"{k['seconds'] * 1e3:.3f}",
         f"{k['flops'] / 1e9:.3f}",
         f"{k['bytes'] / 1e6:.3f}")
        for name, k in sorted(kernels.items())
    ]
    print_table(
        f"obs profile overhead (host: {cores} cores, "
        f"{CONFIG['algorithm']} P={CONFIG['p']} "
        f"W={CONFIG['workers']} [{CONFIG['transport']}]): "
        f"untraced {untraced_s * 1e3:.1f} ms, profiled "
        f"{profiled_s * 1e3:.1f} ms, ratio {overhead:.3f}",
        ("kernel", "calls", "seconds (ms)", "GFLOP", "MB moved"),
        rows,
    )

    # Harness timing: the traced+profiled resident fit.
    from repro.dist import make_algorithm

    algo = make_algorithm(
        CONFIG["algorithm"], CONFIG["p"], ds, hidden=HIDDEN, seed=0,
        backend="process", workers=CONFIG["workers"],
        transport=CONFIG["transport"], variant=CONFIG["variant"])
    try:
        algo.fit(ds.features, ds.labels, epochs=1)  # warm-up

        def profiled_fit_once():
            return algo.fit(ds.features, ds.labels, epochs=1,
                            trace={"profile": True})

        benchmark(profiled_fit_once)
    finally:
        algo.rt.close()

    attach(
        benchmark,
        bench_section="obs_profile",
        host_cores=cores,
        graph=GRAPH,
        hidden=HIDDEN,
        epochs_timed=EPOCHS,
        config=CONFIG,
        untraced_s=untraced_s,
        profiled_s=profiled_s,
        overhead_ratio=overhead,
        kernels={
            name: dict(calls=k["calls"], seconds=k["seconds"],
                       flops=k["flops"], bytes=k["bytes"])
            for name, k in kernels.items()
        },
        peak_rss_bytes=prof.get("peak_rss_bytes"),
        note=(
            "overhead_ratio = profiled_s / untraced_s through fit() with "
            "trace={'profile': True} (spans AND kernel counters on) on "
            "the resident process backend; the <= 1.10 gate in "
            "check_regression.py applies only when host_cores >= 4.  "
            "Profiled runs are asserted bit-equal (losses + ledger "
            "digest) before any timing is reported"
        ),
    )
