#!/usr/bin/env python
"""Quickstart: distributed GCN training on a virtual 16-GPU cluster.

Trains the paper's 3-layer GCN on a synthetic R-MAT graph with the 2D
(SUMMA) algorithm -- the algorithm the paper implements -- then verifies
the distributed run against the serial reference and prints the Fig.-3
style epoch breakdown.

Run:  python examples/quickstart.py
"""

from repro import make_algorithm, make_synthetic
from repro.nn import SGD, SerialTrainer

P = 16          # virtual GPUs, arranged 4 x 4
EPOCHS = 10


def main() -> None:
    # 1. A synthetic dataset: 512 vertices, avg degree 8, 32 features.
    ds = make_synthetic(n=512, avg_degree=8.0, f=32, n_classes=4, seed=0)
    print(f"dataset: {ds.name}  {ds.summary()}")

    # 2. Train with the 2D algorithm on a virtual 4x4 process grid.
    algo = make_algorithm("2d", P, ds, hidden=16, seed=0,
                          optimizer=SGD(lr=0.1))
    history = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
    print(f"\n2D training on {algo.rt.describe()}")
    for e in history.epochs[:3] + history.epochs[-1:]:
        print(f"  epoch {e.epoch:2d}  loss {e.loss:.4f}  "
              f"acc {e.train_accuracy:.3f}")

    # 3. The same training serially -- losses must match to fp error.
    serial = SerialTrainer.for_dataset(ds, seed=0, optimizer=SGD(lr=0.1))
    serial_hist = serial.train(ds.features, ds.labels, epochs=EPOCHS)
    max_loss_diff = max(
        abs(a - b) for a, b in zip(history.losses, serial_hist.losses)
    )
    print(f"\nserial-vs-distributed max loss difference: {max_loss_diff:.2e}")
    assert max_loss_diff < 1e-9

    # 4. Where did the modeled epoch time go?  (One Fig. 3 stacked bar.)
    breakdown = history.mean_breakdown(skip_first=True)
    total = sum(breakdown.values())
    print(f"\nmodeled epoch time {total * 1e3:.3f} ms on the Summit-like "
          f"profile:")
    for category, seconds in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        print(f"  {category:7s} {seconds * 1e6:9.1f} us  "
              f"({seconds / total:6.1%})")

    # 5. Communication volume accounting (exact, per epoch).
    last = history.epochs[-1]
    print(f"\nper-epoch communication: dense {last.dcomm_bytes} B, "
          f"sparse {last.scomm_bytes} B, "
          f"max per-rank {last.max_rank_comm_bytes} B")


if __name__ == "__main__":
    main()
