#!/usr/bin/env python
"""Profile one distributed training epoch step by step.

The tracker tells you *what* an epoch cost per category (Fig. 3); the
step tracer tells you *where*: which SUMMA stage, which all-gather, which
local kernel.  This example traces a 2D epoch on an Amazon stand-in and
prints the step timeline, the most expensive steps, and the straggler
histogram (the load-balance diagnostic that motivates the paper's random
vertex permutation).

Run:  python examples/profile_epoch.py
"""

from repro import make_algorithm, make_standin
from repro.comm import StepTracer

P = 16


def main() -> None:
    ds = make_standin("amazon", scale_divisor=2048, seed=0)
    print(f"dataset: {ds.name}  {ds.summary()}")

    algo = make_algorithm("2d", P, ds, seed=0)
    tracer = StepTracer(algo.rt.tracker).install()
    algo.setup(ds.features, ds.labels)
    stats = algo.train_epoch(0)
    tracer.uninstall()

    print(f"\nepoch: {stats.modeled_seconds * 1e3:.3f} ms modeled across "
          f"{len(tracer.events)} bulk-synchronous steps")

    print("\ntop 8 most expensive steps:")
    for e in tracer.top_steps(8):
        print(f"  step {e.index:4d}  {e.seconds * 1e6:9.1f} us  "
              f"dominant={e.dominant_category}  slowest rank={e.slowest_rank}")

    print("\nseconds by category (from the trace):")
    by_cat = tracer.seconds_by_category()
    for cat, secs in sorted(by_cat.items(), key=lambda kv: -kv[1]):
        print(f"  {cat:7s} {secs * 1e6:10.1f} us")

    counts = tracer.straggler_counts()
    balanced = counts.pop(-1, 0)
    print(f"\nbalanced steps (collectives pace all ranks equally): "
          f"{balanced}/{len(tracer.events)}")
    if counts:
        print("straggler histogram (rank -> compute steps it was slowest):")
        for rank in sorted(counts, key=lambda r: -counts[r])[:6]:
            print(f"  rank {rank:3d}: {counts[rank]} steps")

    print("\nfirst steps of the timeline:")
    print(tracer.timeline(width=40, max_rows=12))


if __name__ == "__main__":
    main()
