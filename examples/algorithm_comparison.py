#!/usr/bin/env python
"""Compare all four parallel algorithms (1D, 1.5D, 2D, 3D) on one graph.

Every algorithm runs the same full-batch gradient descent, so the loss
trajectories are identical up to floating-point accumulation error; what
differs is *communication*.  This example trains the same model with each
algorithm on a virtual 64-GPU cluster and tabulates:

* per-epoch loss agreement (the paper's correctness verification);
* per-rank communication bytes (the paper's T_comm quantity);
* modeled epoch time under the Summit-like profile.

Run:  python examples/algorithm_comparison.py
"""

import numpy as np

from repro import make_algorithm, make_synthetic
from repro.nn import SGD

P = 64
EPOCHS = 5

CONFIGS = [
    ("1d", P, {}),
    ("1.5d", P, {"replication": 4}),     # c* = sqrt(64/2) ~ 5.7 -> 4
    ("2d", P, {}),                        # 8 x 8 grid
    ("3d", P, {}),                        # 4 x 4 x 4 mesh
]


def main() -> None:
    ds = make_synthetic(n=768, avg_degree=8.0, f=32, n_classes=4, seed=1)
    print(f"dataset: {ds.summary()}\nvirtual cluster: {P} GPUs\n")

    runs = {}
    for name, p, kwargs in CONFIGS:
        algo = make_algorithm(
            name, p, ds, hidden=16, seed=3, optimizer=SGD(lr=0.1), **kwargs
        )
        history = algo.fit(ds.features, ds.labels, epochs=EPOCHS)
        runs[name] = history

    # Correctness: every algorithm computes the same training trajectory.
    reference = runs["1d"].losses
    print("loss agreement vs 1D:")
    for name, history in runs.items():
        diff = float(np.max(np.abs(np.array(history.losses) - reference)))
        print(f"  {name:5s} max |loss diff| = {diff:.2e}")
        assert diff < 1e-9

    # Communication: the reason to pick one algorithm over another.
    print(f"\nper-epoch communication at P={P} "
          f"(per-rank critical-path bytes):")
    header = f"  {'algo':5s} {'max rank bytes':>16s} {'dcomm total':>14s} " \
             f"{'scomm total':>14s} {'epoch (ms)':>12s}"
    print(header)
    for name, history in runs.items():
        e = history.epochs[-1]
        print(
            f"  {name:5s} {e.max_rank_comm_bytes:16d} "
            f"{e.dcomm_bytes:14d} {e.scomm_bytes:14d} "
            f"{e.modeled_seconds * 1e3:12.3f}"
        )

    one_d = runs["1d"].epochs[-1].max_rank_comm_bytes
    two_d = runs["2d"].epochs[-1].max_rank_comm_bytes
    three_d = runs["3d"].epochs[-1].max_rank_comm_bytes
    print(f"\n1D / 2D per-rank bytes: {one_d / two_d:.2f}x "
          f"(paper: ~sqrt(P)/5 = {np.sqrt(P) / 5:.2f}x at this scale)")
    print(f"2D / 3D per-rank bytes: {two_d / three_d:.2f}x "
          f"(paper: another ~P^(1/6) = {P ** (1 / 6):.2f}x)")


if __name__ == "__main__":
    main()
