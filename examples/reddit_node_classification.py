#!/usr/bin/env python
"""Node classification on the Reddit stand-in -- the paper's headline
workload -- with measured communication statistics.

Reddit (Table VI: 233k vertices, 115M edges, 602 features, 41 classes) is
the dataset every distributed-GNN paper reports.  This example:

1. generates the R-MAT stand-in at 1/512 scale with the published degree,
   feature width and class count preserved;
2. trains the paper's 3-layer GCN with the 2D algorithm on 16 virtual
   GPUs, full-batch, whole-graph supervision (the paper's setup);
3. reports the learning curve plus the communication ledger, and checks
   the distributed run against the serial reference.

Run:  python examples/reddit_node_classification.py
"""

import numpy as np

from repro import make_algorithm, make_standin
from repro.nn import Adam, SerialTrainer

P = 16
EPOCHS = 20


def main() -> None:
    ds = make_standin("reddit", scale_divisor=512, seed=0)
    spec = ds.spec
    print("published Reddit:", dict(
        vertices=spec.vertices, edges=spec.edges,
        features=spec.features, labels=spec.labels,
    ))
    print("stand-in:        ", {k: int(v) if k != "avg_degree" else round(v, 1)
                                for k, v in ds.summary().items()})

    algo = make_algorithm("2d", P, ds, seed=0, optimizer=Adam(lr=0.01))
    history = algo.fit(ds.features, ds.labels, epochs=EPOCHS)

    print(f"\ntraining on {algo.rt.describe()}:")
    for e in history.epochs[::4] + history.epochs[-1:]:
        print(f"  epoch {e.epoch:2d}  loss {e.loss:.4f}  "
              f"train acc {e.train_accuracy:.3f}")
    assert history.final_loss < history.losses[0]

    # Serial check (fresh models, same seed -> identical trajectories).
    serial = SerialTrainer.for_dataset(ds, seed=0, optimizer=Adam(lr=0.01))
    serial_hist = serial.train(ds.features, ds.labels, epochs=EPOCHS)
    diff = max(abs(a - b) for a, b in zip(history.losses, serial_hist.losses))
    print(f"\nserial-vs-distributed max loss diff: {diff:.2e}")
    assert diff < 1e-8

    # The communication story of one epoch (Fig. 3 bar for this config).
    last = history.epochs[-1]
    bd = last.seconds_by_category
    total = sum(bd.values())
    print(f"\nmodeled epoch time: {total * 1e3:.2f} ms; breakdown:")
    for cat in ("spmm", "dcomm", "scomm", "trpose", "misc"):
        print(f"  {cat:7s} {bd[cat] * 1e6:10.1f} us ({bd[cat] / total:6.1%})")
    words = last.comm_bytes / 8
    print(f"\nwords moved per epoch (all ranks): {words:.3e}; "
          f"per-rank max: {last.max_rank_comm_bytes / 8:.3e}")


if __name__ == "__main__":
    main()
