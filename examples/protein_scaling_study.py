#!/usr/bin/env python
"""Capacity-planning study for the billion-edge protein network.

The paper's largest experiment trains on a protein-similarity graph with
1.06B edges on up to 100 Summit GPUs.  This example uses the analytic
layer at the FULL published size to answer the questions a practitioner
would ask before buying node hours:

1. How does 2D epoch time decompose across GPU counts (Fig. 2/3)?
2. Where is the 1D-vs-2D words crossover for this dataset (Section VI-d)?
3. What would 3D buy at large P (Section IV-D)?

No graph is instantiated -- the analytic model needs only
(n, nnz, f, L, P), which is exactly why it can run at 9M vertices.

Run:  python examples/protein_scaling_study.py
"""

from repro import Model2DEpoch, published_spec, words_1d, words_2d, words_3d
from repro.analysis.formulas import crossover_p_2d_vs_1d

L = 3


def main() -> None:
    spec = published_spec("protein")
    n, nnz, f = spec.vertices, spec.edges + spec.vertices, float(spec.features)
    print(f"protein (published): n={spec.vertices:,} nnz={nnz:,} "
          f"f={spec.features} labels={spec.labels}\n")

    # 1. Modeled 2D epoch across GPU counts (the paper's panel + beyond).
    print("2D epoch model (Summit profile):")
    print(f"  {'GPUs':>5s} {'sec/epoch':>10s} {'epochs/s':>9s} "
          f"{'spmm':>7s} {'dcomm':>7s} {'scomm':>7s}")
    for p in (36, 64, 100, 256, 1024):
        r = Model2DEpoch.for_published_dataset("protein", p).run()
        bd = r.seconds_by_category
        print(f"  {p:5d} {r.total_seconds:10.3f} {r.epochs_per_second:9.3f} "
              f"{bd['spmm']:7.3f} {bd['dcomm']:7.3f} {bd['scomm']:7.3f}")

    r36 = Model2DEpoch.for_published_dataset("protein", 36).run()
    r100 = Model2DEpoch.for_published_dataset("protein", 100).run()
    comm_ratio = (
        sum(r36.seconds_by_category[c] for c in ("scomm", "dcomm", "trpose"))
        / sum(r100.seconds_by_category[c] for c in ("scomm", "dcomm", "trpose"))
    )
    print(f"\n  36 -> 100 GPUs: total communication drops {comm_ratio:.2f}x "
          f"(paper measured ~1.65x)")

    # 2. Algorithm choice: words moved per process per epoch.
    print("\nper-process words per epoch (analytic, Section IV):")
    print(f"  {'GPUs':>5s} {'1D':>12s} {'2D':>12s} {'3D':>12s} "
          f"{'best':>6s}")
    for p in (16, 64, 256, 1024):
        w1 = words_1d(n, nnz, f, L, p).words
        w2 = words_2d(n, nnz, f, L, p).words
        w3 = words_3d(n, nnz, f, L, p).words
        best = min((w1, "1D"), (w2, "2D"), (w3, "3D"))[1]
        print(f"  {p:5d} {w1:12.4e} {w2:12.4e} {w3:12.4e} {best:>6s}")

    cross = crossover_p_2d_vs_1d(n, nnz, f, L)
    print(f"\n2D overtakes 1D at P = {cross} for this dataset "
          f"(paper's rule of thumb: sqrt(P) >= 5).")
    print("Recommendation: below the crossover use the 1D algorithm "
          "(latency-light);\nabove it, 2D; at thousands of GPUs the 3D "
          "algorithm's extra P^(1/6) factor\npays for its memory "
          "replication.")


if __name__ == "__main__":
    main()
