#!/usr/bin/env python
"""Mini-batching, the neighbourhood explosion, and sampling.

The paper's Section I motivates full-batch distributed training with the
*neighbourhood explosion* -- after a few GCN layers a mini-batch depends
on the whole graph -- and its Section VII future work wants distributed
training combined with sampling.  This example walks that argument with
measurements:

1. measure the explosion on a Reddit stand-in;
2. train with sampled mini-batches (GraphSAGE-style fanouts) and compare
   the loss against exact full-batch training -- sampling's
   "approximation error" made visible;
3. show the exactness anchor: full-neighbourhood mini-batching reproduces
   the full computation bit for bit.

Run:  python examples/minibatch_sampling.py
"""

import numpy as np

from repro import make_standin
from repro.nn import GCN, SGD, SerialTrainer
from repro.sampling import (
    LayerSampler,
    MiniBatchGCN,
    MiniBatchTrainer,
    neighborhood_explosion_stats,
)


def main() -> None:
    ds = make_standin("reddit", scale_divisor=512, seed=0)
    n = ds.num_vertices
    print(f"reddit stand-in: {ds.summary()}\n")

    # 1. The neighbourhood explosion (Section I).
    print("receptive field of a random mini-batch (3-layer GCN):")
    for batch in (4, 16, 64):
        stats = neighborhood_explosion_stats(
            ds.adjacency, batch_size=batch, hops=3, trials=3
        )
        sizes = ", ".join(str(int(s)) for s in stats.mean_frontier_sizes)
        print(f"  batch {batch:3d}: hop sizes [{sizes}]  "
              f"-> {stats.final_fraction:.0%} of the graph")

    # 2. Sampled mini-batch training vs exact full batch.
    widths = ds.layer_widths()
    epochs = 8
    serial = SerialTrainer(
        GCN(widths, seed=1), ds.adjacency, optimizer=SGD(lr=0.3)
    )
    full_hist = serial.train(ds.features, ds.labels, epochs=epochs)

    print(f"\nfull batch vs sampled mini-batches ({epochs} epochs):")
    print(f"  full batch          final loss {full_hist.final_loss:.4f}")
    for fanout in (2, 5, 10):
        model = MiniBatchGCN(widths, seed=1)
        trainer = MiniBatchTrainer(
            model, ds.adjacency, fanouts=[fanout] * 3,
            batch_size=64, optimizer=SGD(lr=0.3), seed=2,
        )
        hist = trainer.train(ds.features, ds.labels, epochs=epochs)
        pyramid = trainer.sampler.sample(np.arange(64))
        print(f"  fanout {fanout:2d} sampled   final loss "
              f"{hist[-1].mean_loss:.4f}  "
              f"(pyramid edges per batch ~{pyramid.total_edges()})")

    # 3. Exactness: full-neighbourhood pyramid == full-graph forward.
    model = MiniBatchGCN(widths, seed=3)
    sampler = LayerSampler(ds.adjacency, model.num_layers, fanouts=None)
    batch = np.arange(0, n, max(1, n // 10))
    sub = sampler.sample(batch)
    lp_batch, _ = model.forward(sub, ds.features)
    full_model = GCN(widths, seed=3)
    lp_full = full_model.predict(ds.adjacency, ds.features)
    diff = np.abs(lp_batch - lp_full[sub.batch]).max()
    print(f"\nfull-neighbourhood mini-batch vs full graph: "
          f"max |diff| = {diff:.2e}")
    assert diff < 1e-10


if __name__ == "__main__":
    main()
